package core_test

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sim"
)

// newObsRig is newRig plus an attached metrics registry.
func newObsRig(t *testing.T, chips int, profile cpumodel.Profile, freqMHz int) (*rig, *obs.Metrics, *cpumodel.CPU) {
	t.Helper()
	k := sim.NewKernel()
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chips; i++ {
		l, err := nand.NewLUN(smallParams())
		if err != nil {
			t.Fatal(err)
		}
		ch.Attach(l)
	}
	mem := dram.New(1 << 20)
	cpu, err := cpumodel.New(k, freqMHz, profile)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.NewMetrics()
	ctrl, err := core.New(core.Config{Kernel: k, Channel: ch, DRAM: mem, CPU: cpu, Tracer: m})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	return &rig{k: k, ch: ch, mem: mem, ctrl: ctrl}, m, cpu
}

// TestMetricsCrossCheck is the acceptance criterion for the event
// stream: the software/hardware time split derived purely from events
// must reproduce the CPU model's and the channel's own counters
// exactly, and the event counters must agree with controller Stats.
func TestMetricsCrossCheck(t *testing.T) {
	r, m, cpu := newObsRig(t, 2, cpumodel.RTOS(), 1000)
	for i := 0; i < 2; i++ {
		if err := r.ch.Chip(i).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, i*1024, 64),
			Chip: i % 2,
			Done: func(err error) {
				if err != nil {
					t.Error(err)
				}
			},
		})
	}
	r.k.Run()

	s := m.Snapshot()
	if s.SoftwareTime != cpu.Stats().BusyTime {
		t.Errorf("SoftwareTime %v != cpu BusyTime %v", s.SoftwareTime, cpu.Stats().BusyTime)
	}
	if s.SoftwareCycles != cpu.Stats().CyclesCharged {
		t.Errorf("SoftwareCycles %d != cpu CyclesCharged %d", s.SoftwareCycles, cpu.Stats().CyclesCharged)
	}
	if s.HardwareTime != r.ch.Stats().BusyTime {
		t.Errorf("HardwareTime %v != channel BusyTime %v", s.HardwareTime, r.ch.Stats().BusyTime)
	}
	st := r.ctrl.Stats()
	if s.OpsFinished != st.OpsCompleted {
		t.Errorf("OpsFinished %d != OpsCompleted %d", s.OpsFinished, st.OpsCompleted)
	}
	if s.TxnsExecuted != st.TxnsExecuted {
		t.Errorf("TxnsExecuted %d != stats %d", s.TxnsExecuted, st.TxnsExecuted)
	}
	if s.TxnsEnqueued != s.TxnsExecuted || s.TxnsPopped != s.TxnsExecuted {
		t.Errorf("txn pipeline leaked: enq=%d pop=%d exec=%d", s.TxnsEnqueued, s.TxnsPopped, s.TxnsExecuted)
	}
	if s.OpsAdmitted != 6 || s.OpsFinished != 6 {
		t.Errorf("ops: admitted=%d finished=%d", s.OpsAdmitted, s.OpsFinished)
	}
	if s.SoftwareShare() <= 0 || s.SoftwareShare() >= 1 {
		t.Errorf("SoftwareShare = %v", s.SoftwareShare())
	}
	// Per-chip roll-up covers both chips and sums to the totals.
	var chipTxns uint64
	var chipBusy sim.Duration
	for _, cm := range s.Chips {
		chipTxns += cm.TxnsExecuted
		chipBusy += cm.BusyTime
	}
	if chipTxns != s.TxnsExecuted || chipBusy != s.HardwareTime {
		t.Errorf("chip roll-up: txns %d/%d busy %v/%v", chipTxns, s.TxnsExecuted, chipBusy, s.HardwareTime)
	}
	// Operation latency events must agree with the latency registry.
	if s.OpLatency.Count != uint64(r.ctrl.Latency().Count()) {
		t.Errorf("OpLatency.Count %d != latency samples %d", s.OpLatency.Count, r.ctrl.Latency().Count())
	}
}

// TestReadmissionChargesAdmitCycles pins the fix for the finishOp
// re-admission path: every admission pass — initial or re-run after a
// completion — must pay AdmitCycles, so the "admit" charge count in the
// event stream exceeds the op count whenever ops parked, and software
// time still reconciles with the CPU model exactly.
func TestReadmissionChargesAdmitCycles(t *testing.T) {
	r, m, cpu := newObsRig(t, 1, cpumodel.RTOS(), 1000)
	if err := r.ch.Chip(0).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	// 4 ops on one chip: active + staged fill, ops 3 and 4 park and are
	// re-admitted by later finishOp passes.
	for i := 0; i < 4; i++ {
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, i*1024, 64), Chip: 0,
			Done: func(err error) {
				if err != nil {
					t.Error(err)
				}
			},
		})
	}
	r.k.Run()

	s := m.Snapshot()
	if s.AdmissionWaits == 0 {
		t.Fatal("scenario did not exercise parking")
	}
	admits := s.Charges["admit"]
	wantAdmits := 4 + s.AdmissionWaits // one per Start + one per re-admission pass
	if admits.Count != wantAdmits {
		t.Errorf("admit charges = %d, want %d (4 starts + %d re-admissions)",
			admits.Count, wantAdmits, s.AdmissionWaits)
	}
	profile := cpu.Profile()
	if admits.Cycles != int64(wantAdmits)*profile.AdmitCycles {
		t.Errorf("admit cycles = %d, want %d", admits.Cycles, int64(wantAdmits)*profile.AdmitCycles)
	}
	// The under-accounting bug showed up as SoftwareTime < cpu BusyTime;
	// with the fix the reconciliation is exact.
	if s.SoftwareTime != cpu.Stats().BusyTime {
		t.Errorf("SoftwareTime %v != cpu BusyTime %v", s.SoftwareTime, cpu.Stats().BusyTime)
	}
}

// TestGangOpNotStarved is the regression test for gang-op starvation:
// a parked multi-chip operation must not be leapfrogged indefinitely by
// later single-chip traffic on its chips — freed slots are reserved for
// it until it runs.
func TestGangOpNotStarved(t *testing.T) {
	r := newRig(t, 2, cpumodel.RTOS(), 1000)
	for i := 0; i < 2; i++ {
		if err := r.ch.Chip(i).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	start := func(name string, fn core.OpFunc, chip int, extra []int) {
		r.ctrl.Start(core.OpRequest{
			Func: fn, Chip: chip, ExtraChips: extra, Label: name,
			Done: func(err error) {
				if err != nil {
					t.Errorf("%s: %v", name, err)
				}
				order = append(order, name)
			},
		})
	}
	// Both chips busy, then a gang op, then a stream of single-chip ops
	// that — without reservation — would slip into every slot the gang
	// op needs, starving it until the queue drains.
	start("A", ops.ReadPage(onfi.Addr{}, 0, 64), 0, nil)
	start("B", ops.ReadPage(onfi.Addr{}, 1024, 64), 1, nil)
	start("gang", ops.GangRead([]int{0, 1}, onfi.Addr{}, 2048, 64), 0, []int{1})
	start("C", ops.ReadPage(onfi.Addr{}, 4096, 64), 0, nil)
	start("D", ops.ReadPage(onfi.Addr{}, 5120, 64), 1, nil)
	start("E", ops.ReadPage(onfi.Addr{}, 6144, 64), 0, nil)
	start("F", ops.ReadPage(onfi.Addr{}, 7168, 64), 1, nil)
	r.k.Run()

	if len(order) != 7 {
		t.Fatalf("completions: %v", order)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	// The gang op arrived before C–F and must finish before all of them.
	for _, late := range []string{"C", "D", "E", "F"} {
		if pos["gang"] > pos[late] {
			t.Fatalf("gang op starved: order %v", order)
		}
	}
}

// TestCloseNeutralizesPendingCallbacks pins the Close fix: kernel
// callbacks still scheduled at Close time (transaction completions,
// CPU work, timers) must become no-ops instead of resuming aborted
// coroutines or mutating freed controller state.
func TestCloseNeutralizesPendingCallbacks(t *testing.T) {
	r := newRig(t, 2, cpumodel.RTOS(), 1000)
	for i := 0; i < 2; i++ {
		if err := r.ch.Chip(i).SeedPage(onfi.RowAddr{}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		r.ctrl.Start(core.OpRequest{
			Func: ops.ReadPage(onfi.Addr{}, i*1024, 64), Chip: i % 2,
		})
	}
	// Advance far enough that transactions are in flight with completion
	// callbacks scheduled, then close mid-operation.
	r.k.RunFor(20 * sim.Microsecond)
	r.ctrl.Close()
	statsAtClose := r.ctrl.Stats()

	// Draining the kernel afterwards must neither panic nor touch stats.
	r.k.Run()
	if got := r.ctrl.Stats(); got != statsAtClose {
		t.Errorf("stats mutated after Close: %+v -> %+v", statsAtClose, got)
	}
	if r.ctrl.Pending() != 0 {
		t.Error("pending ops after Close")
	}
	// Close is idempotent and Start after Close is a documented no-op.
	r.ctrl.Close()
	if id := r.ctrl.Start(core.OpRequest{Func: ops.Reset(), Chip: 0}); id != 0 {
		t.Errorf("Start after Close returned id %d", id)
	}
	r.k.Run()
	if got := r.ctrl.Stats(); got != statsAtClose {
		t.Errorf("stats mutated by Start after Close: %+v", got)
	}
}

// TestPollResubmitClassification pins the ctx.go fix: only a capture
// submit repeating the *same* command counts as a polling resubmission.
// Distinct back-to-back capture phases (READ ID then READ STATUS) and
// polls separated by a Sleep are fresh submissions.
func TestPollResubmitClassification(t *testing.T) {
	r, m, _ := newObsRig(t, 1, cpumodel.RTOS(), 1000)
	capture := func(ctx *core.Ctx, cmd onfi.Cmd) {
		ctx.Cmd(cmd)
		ctx.ReadCapture(1)
		ctx.Submit()
	}
	r.ctrl.Start(core.OpRequest{
		Func: func(ctx *core.Ctx) error {
			capture(ctx, onfi.CmdReadStatus) // first poll: not a resubmit
			capture(ctx, onfi.CmdReadStatus) // same command again: resubmit
			capture(ctx, onfi.CmdReadID)     // distinct capture phase: NOT a resubmit
			capture(ctx, onfi.CmdReadStatus) // command changed back: NOT a resubmit
			ctx.Sleep(sim.Microsecond)
			capture(ctx, onfi.CmdReadStatus) // sleep broke the loop: NOT a resubmit
			capture(ctx, onfi.CmdReadStatus) // resubmit again
			return nil
		},
		Chip: 0,
		Done: func(err error) {
			if err != nil {
				t.Error(err)
			}
		},
	})
	r.k.Run()

	s := m.Snapshot()
	if s.PollResubmits != 2 {
		t.Errorf("PollResubmits = %d, want 2 (old classifier counted every capture-after-capture: 4)",
			s.PollResubmits)
	}
	if got := s.Charges["poll-resubmit"].Count; got != 2 {
		t.Errorf("poll-resubmit charges = %d, want 2", got)
	}
}

// TestStatsSemantics documents that OpsCompleted counts every
// terminated operation including failures, with OpsSucceeded as the
// derived error-free count.
func TestStatsSemantics(t *testing.T) {
	r := newRig(t, 1, cpumodel.RTOS(), 1000)
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 0, Page: 0}}
	// First program succeeds; overwriting the same page fails.
	r.ctrl.Start(core.OpRequest{
		Func: ops.ProgramPage(addr, 0, 16), Chip: 0,
		Done: func(error) {
			r.ctrl.Start(core.OpRequest{Func: ops.ProgramPage(addr, 0, 16), Chip: 0})
		},
	})
	r.k.Run()
	st := r.ctrl.Stats()
	if st.OpsCompleted != 2 {
		t.Errorf("OpsCompleted = %d, want 2 (failed ops count as completed)", st.OpsCompleted)
	}
	if st.OpsFailed != 1 {
		t.Errorf("OpsFailed = %d, want 1", st.OpsFailed)
	}
	if st.OpsSucceeded() != 1 {
		t.Errorf("OpsSucceeded() = %d, want 1", st.OpsSucceeded())
	}
}

// TestFailedOpEmitsErrEvent verifies the op-finished event carries the
// failure flag so per-chip failure counters work.
func TestFailedOpEmitsErrEvent(t *testing.T) {
	r, m, _ := newObsRig(t, 1, cpumodel.RTOS(), 1000)
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 0, Page: 0}}
	r.ctrl.Start(core.OpRequest{
		Func: ops.ProgramPage(addr, 0, 16), Chip: 0,
		Done: func(error) {
			r.ctrl.Start(core.OpRequest{Func: ops.ProgramPage(addr, 0, 16), Chip: 0})
		},
	})
	r.k.Run()
	s := m.Snapshot()
	if s.OpsFinished != 2 || s.OpsFailed != 1 {
		t.Errorf("events: finished=%d failed=%d", s.OpsFinished, s.OpsFailed)
	}
	chip := s.Chips[obs.ChipKey{Chip: 0}]
	if chip.OpsFinished != 2 || chip.OpsFailed != 1 {
		t.Errorf("chip events: %+v", chip)
	}
}
