package obs

import "repro/internal/sim"

// EmitShardTelemetry replays a cluster telemetry snapshot into the
// event stream: one KindShardWindow event per (window, busy shard) from
// the flight recorder, oldest window first and shards in ascending
// order, then one KindShardMailbox aggregate per (src,dst) pair with
// traffic. `at` stamps the mailbox aggregates (the run's end time).
//
// Only virtual-time quantities from the snapshot are emitted — the
// wall-clock exec/barrier attribution stays in the snapshot for the
// live /shards endpoint — so the emitted events are a deterministic
// function of the simulation, and a trace with shard events enabled is
// reproducible run over run.
//
// The flight recorder is bounded: when snap.Windows exceeds the
// recorder depth the oldest windows are gone, which downstream
// consumers detect by the first record's Seq being greater than 1.
func EmitShardTelemetry(t Tracer, snap sim.TelemetrySnapshot, at sim.Time) {
	if t == nil {
		return
	}
	for _, rec := range snap.Recent {
		for shard, n := range rec.Events {
			if n == 0 {
				continue
			}
			t.Event(Event{
				Time:  rec.Start,
				Kind:  KindShardWindow,
				TxnID: rec.Seq,
				Chip:  shard,
				Depth: int(n),
				Dur:   rec.Span,
			})
		}
	}
	for _, mb := range snap.Mailboxes {
		t.Event(Event{
			Time:    at,
			Kind:    KindShardMailbox,
			Channel: mb.Src,
			Chip:    mb.Dst,
			Cycles:  int64(mb.Posts),
			Depth:   int(mb.Peak),
		})
	}
}
