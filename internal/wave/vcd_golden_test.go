package wave

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/onfi"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current output")

// goldenTrace is a small fixed capture: a READ command burst, its tR
// busy window, a poll, and the data transfer — the Figure 9 shape.
func goldenTrace() []Segment {
	ns := func(n int64) sim.Time { return sim.Time(n * int64(sim.Nanosecond)) }
	read := []onfi.Latch{onfi.CmdLatch(onfi.CmdRead1), onfi.AddrLatch(0), onfi.AddrLatch(0), onfi.CmdLatch(onfi.CmdRead2)}
	status := []onfi.Latch{onfi.CmdLatch(onfi.CmdReadStatus)}
	return []Segment{
		{Start: ns(0), End: ns(290), Kind: KindCmdAddr, Chip: 0, Label: SummarizeLatches(read), Latches: read, OpID: 1},
		{Start: ns(290), End: ns(50290), Kind: KindBusy, Chip: 0, Label: "tR", OpID: 1},
		{Start: ns(25000), End: ns(25080), Kind: KindCmdAddr, Chip: 0, Label: SummarizeLatches(status), Latches: status, OpID: 1},
		{Start: ns(25160), End: ns(25170), Kind: KindDataOut, Chip: 0, Bytes: 1, Label: "data out", OpID: 1},
		{Start: ns(50400), End: ns(50500), Kind: KindWait, Chip: -1, Label: "timer", OpID: 1},
		{Start: ns(50500), End: ns(71000), Kind: KindDataOut, Chip: 0, Bytes: 4096, Label: "data out", OpID: 1},
	}
}

// The VCD rendering of a recorded trace must stay byte-stable: the file
// format is an interchange surface (GTKWave, CI artifacts), so any
// drift in identifier assignment, edge ordering, or timescale is a
// breaking change this test makes loud. Regenerate deliberately with
// `go test ./internal/wave -run VCDGolden -update`.
func TestVCDGoldenRoundTrip(t *testing.T) {
	r := NewRecorder()
	for _, s := range goldenTrace() {
		r.Record(s)
	}

	var buf strings.Builder
	if err := WriteVCD(&buf, r.Segments(), 0); err != nil {
		t.Fatal(err)
	}
	got := buf.String()

	golden := filepath.Join("testdata", "read.vcd.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("VCD output drifted from golden file %s\n got:\n%s\nwant:\n%s", golden, got, want)
	}

	// Round-trip stability: rendering the same capture twice, or from a
	// fresh recorder fed the ChannelSegments copy plus busy segments,
	// must not change a byte.
	var again strings.Builder
	if err := WriteVCD(&again, r.Segments(), 0); err != nil {
		t.Fatal(err)
	}
	if again.String() != got {
		t.Error("second render differs from first")
	}
}

// The slice ChannelSegments hands out must survive Reset and further
// recording — callers (the analyzer, experiment code) retain it across
// recorder reuse.
func TestChannelSegmentsOwnership(t *testing.T) {
	r := NewRecorder()
	for _, s := range goldenTrace() {
		r.Record(s)
	}
	cs := r.ChannelSegments()
	if len(cs) != 5 {
		t.Fatalf("ChannelSegments = %d, want 5 (busy excluded)", len(cs))
	}
	// Deep-compare snapshot of the returned values.
	want := make([]Segment, len(cs))
	copy(want, cs)

	r.Reset()
	// Overwrite the recycled backing store with different segments.
	for i := 0; i < 8; i++ {
		r.Record(Segment{Start: sim.Time(i), End: sim.Time(i + 1), Kind: KindDataIn, Chip: 9, Label: "clobber", Bytes: 777})
	}

	for i := range cs {
		if cs[i].Start != want[i].Start || cs[i].End != want[i].End ||
			cs[i].Kind != want[i].Kind || cs[i].Chip != want[i].Chip ||
			cs[i].Label != want[i].Label || cs[i].Bytes != want[i].Bytes {
			t.Fatalf("segment %d mutated after Reset+Record: %+v, want %+v", i, cs[i], want[i])
		}
	}
	// The Latches aliasing documented on ChannelSegments: the latch
	// slices recorded before Reset are still intact (the recorder never
	// writes through them).
	if got := SummarizeLatches(cs[0].Latches); got != "READ.1 ADDR×2 READ.2" {
		t.Fatalf("latches clobbered: %q", got)
	}
}
