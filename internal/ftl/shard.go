package ftl

import (
	"fmt"
	"sync"
)

// The L2P map is sharded by LPN range. Each shard owns a contiguous
// range of translation-page groups and is guarded by its own RWMutex,
// so lookups and allocations in different ranges never contend — the
// map scales with the kernel's channel shards instead of serializing
// them behind one lock.
//
// Shard boundaries are always whole translation pages (groups of
// groupEntries L2P entries, one NAND page each): a map page never
// straddles shards, which keeps the cache bookkeeping (cache.go)
// per-shard too.
//
// Storage is lazy at group granularity: a shard starts with nil group
// tables and allocates the 24-byte headers on first write, then each
// group's entry slice on first write into that group. Building a
// TB-class rig that touches a handful of LPNs therefore costs memory
// proportional to the touched translation pages, not the drive size.

// mapEntryBytes is the modeled DRAM cost of one L2P entry — the figure
// FMMU-style designs use when a 4-byte-PPN-plus-metadata entry is laid
// out in an 8-byte slot. It sizes translation-page groups
// (PageBytes/mapEntryBytes entries per map page) and converts the
// MapCacheBytes budget into cache slots.
const mapEntryBytes = 8

// mapShard is one independently locked LPN-range segment of the L2P
// map. mu guards every field; Lookup takes it read-only.
type mapShard struct {
	base int // first LPN of the range
	size int // LPNs in the range (last shard may be short)

	mu sync.RWMutex

	// Forward map, split into translation-page groups of groupEntries
	// entries. Outer slices are nil until the shard's first write;
	// inner slices are nil until their group's first write.
	l2p    [][]Location
	mapped [][]bool
	live   int // mapped LPNs in this shard

	// Translation-page cache state (cache.go); nil/empty when the
	// cache is disabled.
	resident map[int]int // global map-page number → slot index
	slots    []cacheSlot
	used     int // occupied slots
	hand     int // clock hand
}

// initShards carves the logical space into nshards locked ranges,
// rounding the shard size up to whole translation-page groups.
func (f *FTL) initShards(nshards int) {
	if nshards == 0 {
		nshards = f.chips
	}
	groups := (f.logical + f.groupEntries - 1) / f.groupEntries
	if groups < 1 {
		groups = 1
	}
	if nshards > groups {
		nshards = groups
	}
	perShard := (groups + nshards - 1) / nshards
	f.shardSize = perShard * f.groupEntries
	n := (f.logical + f.shardSize - 1) / f.shardSize
	if n < 1 {
		n = 1
	}
	f.shards = make([]mapShard, n)
	for i := range f.shards {
		sh := &f.shards[i]
		sh.base = i * f.shardSize
		sh.size = f.shardSize
		if rest := f.logical - sh.base; rest < sh.size {
			sh.size = rest
		}
	}
}

// shard returns the owner of an in-range LPN.
func (f *FTL) shard(lpn int) *mapShard {
	return &f.shards[lpn/f.shardSize]
}

// MapShards reports the number of L2P map shards.
func (f *FTL) MapShards() int { return len(f.shards) }

// groupCount reports how many translation-page groups a shard spans.
func (f *FTL) groupCount(sh *mapShard) int {
	return (sh.size + f.groupEntries - 1) / f.groupEntries
}

// Lookup translates a logical page number. ok is false for never-written
// pages. Allocation-free and safe to call concurrently from any
// goroutine: only the owning shard's read lock is taken.
func (f *FTL) Lookup(lpn int) (Location, bool) {
	if lpn < 0 || lpn >= f.logical {
		return Location{}, false
	}
	sh := f.shard(lpn)
	idx := lpn - sh.base
	g, o := idx/f.groupEntries, idx%f.groupEntries
	sh.mu.RLock()
	if sh.mapped == nil || sh.mapped[g] == nil || !sh.mapped[g][o] {
		sh.mu.RUnlock()
		return Location{}, false
	}
	loc := sh.l2p[g][o]
	sh.mu.RUnlock()
	return loc, true
}

// Invalidate drops a logical page's mapping (host TRIM, or a failed
// program whose mapping must not survive).
func (f *FTL) Invalidate(lpn int) {
	if lpn < 0 || lpn >= f.logical {
		return
	}
	sh := f.shard(lpn)
	sh.mu.Lock()
	f.clearMappingLocked(sh, lpn)
	sh.mu.Unlock()
}

// clearMappingLocked drops lpn's mapping if present: chip-side reverse
// entry, forward entry, shard live count, and the cache's dirty state
// for the owning map page. Caller holds sh.mu exclusively.
func (f *FTL) clearMappingLocked(sh *mapShard, lpn int) {
	idx := lpn - sh.base
	g, o := idx/f.groupEntries, idx%f.groupEntries
	if sh.mapped == nil || sh.mapped[g] == nil || !sh.mapped[g][o] {
		return
	}
	f.invalidateLoc(sh.l2p[g][o])
	sh.mapped[g][o] = false
	sh.live--
	f.markDirtyLocked(sh, lpn)
}

// setMappingLocked records lpn → loc, allocating the group's storage on
// first touch. Caller holds sh.mu exclusively and has already cleared
// any previous mapping.
func (f *FTL) setMappingLocked(sh *mapShard, lpn int, loc Location) {
	idx := lpn - sh.base
	g, o := idx/f.groupEntries, idx%f.groupEntries
	if sh.l2p == nil {
		n := f.groupCount(sh)
		sh.l2p = make([][]Location, n)
		sh.mapped = make([][]bool, n)
	}
	if sh.l2p[g] == nil {
		sh.l2p[g] = make([]Location, f.groupEntries)
		sh.mapped[g] = make([]bool, f.groupEntries)
	}
	sh.l2p[g][o] = loc
	sh.mapped[g][o] = true
	sh.live++
	f.markDirtyLocked(sh, lpn)
}

// MappedPages reports the number of live logical pages drive-wide,
// summed across shards under their read locks.
func (f *FTL) MappedPages() int {
	total := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		total += sh.live
		sh.mu.RUnlock()
	}
	return total
}

// CheckInvariants verifies the bidirectional mapping consistency plus
// the sharded accounting: every forward entry must point at a reverse
// entry naming it, per-block valid counts must match the reverse maps,
// and the per-shard live counts must sum to the per-chip live counts.
// Tests and the property suite call it after mutation storms.
func (f *FTL) CheckInvariants() error {
	// Every mapped LPN's location must point back at it, and every
	// shard's live counter must equal its mapped-entry population.
	shardLive := 0
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		live := 0
		for g := range sh.mapped {
			for o, ok := range sh.mapped[g] {
				if !ok {
					continue
				}
				live++
				lpn := sh.base + g*f.groupEntries + o
				loc := sh.l2p[g][o]
				cs := &f.chipsArr[loc.Chip]
				cs.mu.Lock()
				blk := &cs.blocks[loc.Row.Block]
				got := invalidLPN
				if blk.lpns != nil {
					got = blk.lpns[loc.Row.Page]
				}
				cs.mu.Unlock()
				if got != lpn {
					sh.mu.RUnlock()
					return fmt.Errorf("ftl: L2P says LPN %d at %+v but reverse map says %d", lpn, loc, got)
				}
			}
		}
		if live != sh.live {
			sh.mu.RUnlock()
			return fmt.Errorf("ftl: shard %d live=%d but mapped entries count %d", i, sh.live, live)
		}
		shardLive += live
		sh.mu.RUnlock()
	}
	// Valid counters must match the reverse maps.
	chipLive := 0
	for c := range f.chipsArr {
		cs := &f.chipsArr[c]
		cs.mu.Lock()
		live := 0
		for b := range cs.blocks {
			n := 0
			for _, lpn := range cs.blocks[b].lpns {
				if lpn != invalidLPN {
					n++
				}
			}
			if n != cs.blocks[b].valid {
				cs.mu.Unlock()
				return fmt.Errorf("ftl: chip %d block %d valid=%d but reverse map has %d", c, b, cs.blocks[b].valid, n)
			}
			live += n
		}
		if live != cs.livePages {
			cs.mu.Unlock()
			return fmt.Errorf("ftl: chip %d livePages=%d but blocks hold %d", c, cs.livePages, live)
		}
		chipLive += cs.livePages
		cs.mu.Unlock()
	}
	// The sharded forward map and the per-chip reverse accounting are
	// two views of the same live-page population.
	if shardLive != chipLive {
		return fmt.Errorf("ftl: shard live sum %d != chip live sum %d", shardLive, chipLive)
	}
	return nil
}
