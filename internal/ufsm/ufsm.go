// Package ufsm implements BABOL's Operation Execution hardware: the five
// parameterizable µFSMs and the Packetizer DMA unit, assembled into an
// Executor that plays queued transactions onto a channel.
//
// The µFSMs are "software-configurable waveform segment emitters" (paper
// Fig. 5): each txn.Instr carries the parameters, and the corresponding
// emit method produces the timed bus segment. Intra-segment timing (tCS,
// tWP, tWB, DQS preambles, …) is the µFSMs' responsibility and is folded
// into the bus segment lengths; inter-segment timing (tR, tADL, …) is the
// operation logic's responsibility via the Timer µFSM or status polling.
package ufsm

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/dram"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/txn"
)

// Executor is the hardware execution unit for one channel.
type Executor struct {
	ch   *bus.Channel
	mem  *dram.Buffer
	stat Stats
	tr   obs.Tracer
	// scratch sinks data reads that target neither DRAM nor the capture
	// buffer; reused across transactions.
	scratch []byte
}

// Stats counts executed work.
type Stats struct {
	Transactions uint64
	Instructions uint64
	DMAInBytes   uint64 // DRAM → LUN
	DMAOutBytes  uint64 // LUN → DRAM
}

// NewExecutor wires the execution unit to a channel and the DRAM buffer
// the Packetizer moves data against.
func NewExecutor(ch *bus.Channel, mem *dram.Buffer) *Executor {
	return &Executor{ch: ch, mem: mem}
}

// Channel returns the attached channel.
func (e *Executor) Channel() *bus.Channel { return e.ch }

// SetTracer attaches an event tracer emitting one KindHWInstr event per
// timed µFSM instruction. nil (the default) disables emission.
func (e *Executor) SetTracer(t obs.Tracer) { e.tr = t }

// Stats returns a snapshot of the counters.
func (e *Executor) Stats() Stats { return e.stat }

// Execute plays every instruction of t onto the channel, back to back,
// starting at the channel's current schedule horizon. It returns the
// transaction's Result; Done is NOT invoked — the caller (the controller)
// owns completion delivery so it can charge software wake-up costs.
//
// Execute must only be called when the scheduler has granted the channel
// (Free() at the current virtual time); the bus appends chained segments
// without re-arbitration.
func (e *Executor) Execute(t *txn.Transaction) txn.Result {
	if err := t.Validate(); err != nil {
		return txn.Result{Err: err}
	}
	var sel bus.ChipMask
	captured := t.CapBuf
	if captured != nil {
		captured = captured[:0]
	}
	var end sim.Time
	for _, in := range t.Instrs {
		e.stat.Instructions++
		var err error
		var label string
		var nbytes int
		var busyBefore sim.Duration
		if e.tr != nil {
			busyBefore = e.ch.Stats().BusyTime
		}
		switch in.Kind {
		case txn.KindChipControl:
			// C/E Control µFSM: pure modifier, no bus time.
			sel = in.Mask
		case txn.KindCmdAddr:
			// Command/Address Writer µFSM.
			label = "cmd-addr"
			end, err = e.ch.Latch(sel, in.Latches, t.OpID)
		case txn.KindDataWrite:
			// Packetizer fetches from DRAM; Data Writer drives DQ/DQS.
			label, nbytes = "data-write", in.N
			var window []byte
			window, err = e.mem.Window(in.Addr, in.N)
			if err == nil {
				end, err = e.ch.DataIn(sel, window, t.OpID)
				e.stat.DMAInBytes += uint64(in.N)
			}
		case txn.KindDataRead:
			// Data Reader µFSM strobes DQS; the Packetizer stores straight
			// into the destination — the DRAM window, the capture buffer,
			// or the executor's scratch sink — with no intermediate copy.
			label, nbytes = "data-read", in.N
			var dst []byte
			switch {
			case in.Addr >= 0:
				dst, err = e.mem.Window(in.Addr, in.N)
			case in.Capture:
				base := len(captured)
				captured = append(captured, make([]byte, in.N)...)
				dst = captured[base:]
			default:
				if cap(e.scratch) < in.N {
					e.scratch = make([]byte, in.N)
				}
				dst = e.scratch[:in.N]
			}
			if err == nil {
				end, err = e.ch.DataOutInto(sel, dst, t.OpID)
			}
			if err == nil {
				e.stat.DMAOutBytes += uint64(in.N)
				if in.Capture && in.Addr >= 0 {
					captured = append(captured, dst...)
				}
			}
		case txn.KindTimerWait:
			// Timer µFSM.
			label = "timer-wait"
			end, err = e.ch.Pause(in.D, t.OpID)
		default:
			err = fmt.Errorf("ufsm: unknown instruction kind %d", in.Kind)
		}
		if e.tr != nil && label != "" {
			e.tr.Event(obs.Event{
				Time: end, Kind: obs.KindHWInstr,
				OpID: t.OpID, TxnID: t.ID, Chip: firstChip(sel),
				Dur: e.ch.Stats().BusyTime - busyBefore, Bytes: nbytes,
				Err: err != nil, Label: label,
			})
		}
		if err != nil {
			return txn.Result{Captured: captured, End: end, Err: err}
		}
	}
	e.stat.Transactions++
	return txn.Result{Captured: captured, End: end}
}

// firstChip returns the lowest selected chip index for event tagging,
// or -1 when nothing is selected.
func firstChip(m bus.ChipMask) int {
	for i := 0; i < 16; i++ {
		if m.Has(i) {
			return i
		}
	}
	return -1
}
