package ssd

import (
	"testing"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/sim"
)

// smallBuild returns a BuildConfig over a small geometry for fast tests.
func smallBuild(kind ControllerKind) BuildConfig {
	p := nand.Hynix()
	p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 16, PagesPerBlk: 4, PageBytes: 512, SpareBytes: 64}
	p.JitterPct = 0
	// A clean medium: logic tests must not see wear-induced bit errors
	// (the ECC tests re-enable them explicitly).
	p.RawBitErrorPer512B = 0
	// Shrink array times so GC-heavy tests stay fast in virtual time.
	p.TR = 20 * sim.Microsecond
	p.TPROG = 50 * sim.Microsecond
	p.TBERS = 200 * sim.Microsecond
	return BuildConfig{Params: p, Ways: 2, Controller: kind}
}

func mustBuild(t *testing.T, cfg BuildConfig) *Rig {
	t.Helper()
	rig, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rig.Close)
	return rig
}

func TestBuildDefaults(t *testing.T) {
	rig := mustBuild(t, BuildConfig{Controller: CtrlHW})
	if rig.Channel.Chips() != nand.Hynix().LUNsPerChannel {
		t.Errorf("default ways = %d", rig.Channel.Chips())
	}
	if rig.HW == nil || rig.Babol != nil {
		t.Error("HW build wired wrong controller")
	}
	rtos := mustBuild(t, BuildConfig{Controller: CtrlBabolRTOS})
	if rtos.Babol == nil {
		t.Error("RTOS build missing BABOL controller")
	}
}

func TestControllerKindString(t *testing.T) {
	if CtrlHW.String() != "HW" || CtrlBabolRTOS.String() != "RTOS" || CtrlBabolCoro.String() != "Coro" {
		t.Error("kind names wrong")
	}
}

func TestWriteReadThroughBothControllers(t *testing.T) {
	for _, kind := range []ControllerKind{CtrlHW, CtrlBabolRTOS} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			rig := mustBuild(t, smallBuild(kind))
			var sequence []error
			rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: 7, Done: func(err error) {
				sequence = append(sequence, err)
				rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: 7, Done: func(err error) {
					sequence = append(sequence, err)
				}})
			}})
			rig.Kernel.Run()
			if len(sequence) != 2 {
				t.Fatalf("completions: %d", len(sequence))
			}
			for i, err := range sequence {
				if err != nil {
					t.Errorf("step %d: %v", i, err)
				}
			}
			// Verify the data actually landed in the array.
			loc, ok := rig.FTL.Lookup(7)
			if !ok {
				t.Fatal("LPN 7 unmapped after write")
			}
			page, err := rig.Channel.Chip(loc.Chip).PeekPage(loc.Row)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, 512)
			FillPattern(want, 7)
			for i := range want {
				if page[i] != want[i] {
					t.Fatalf("stored byte %d = %02x, want %02x", i, page[i], want[i])
				}
			}
		})
	}
}

func TestReadUnwrittenCompletesWithoutFlashTraffic(t *testing.T) {
	rig := mustBuild(t, smallBuild(CtrlHW))
	done := false
	rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: 3, Done: func(err error) {
		if err != nil {
			t.Error(err)
		}
		done = true
	}})
	rig.Kernel.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if rig.Channel.Stats().LatchBursts != 0 {
		t.Error("unwritten read generated flash traffic")
	}
}

func TestPreloadAndWorkload(t *testing.T) {
	rig := mustBuild(t, smallBuild(CtrlBabolRTOS))
	logical := rig.FTL.LogicalPages()
	if err := rig.SSD.Preload(logical); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: 50, QueueDepth: 4, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Completed != 50 || res.Failed != 0 {
		t.Fatalf("result: %+v", res)
	}
	if res.BandwidthMBps(512) <= 0 {
		t.Error("no bandwidth measured")
	}
	if res.MeanLatency() <= 0 || res.LatencyPercentile(99) < res.LatencyPercentile(50) {
		t.Error("latency accounting broken")
	}
}

func TestGCReclaimsSpace(t *testing.T) {
	cfg := smallBuild(CtrlHW)
	cfg.Ways = 1
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()

	// Write 4× the logical space: forces steady-state GC.
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 4, QueueDepth: 1, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d writes failed", res.Failed)
	}
	if res.Completed != logical*4 {
		t.Fatalf("completed %d of %d", res.Completed, logical*4)
	}
	st := rig.SSD.Stats()
	if st.GCCycles == 0 {
		t.Error("no GC ran despite 4× overwrite")
	}
	fst := rig.FTL.Stats()
	if fst.WriteAmplification() < 1.0 {
		t.Errorf("WA = %v", fst.WriteAmplification())
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All data still readable and correct afterwards.
	verified := 0
	for lpn := 0; lpn < logical; lpn++ {
		lpn := lpn
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				t.Errorf("read LPN %d after GC: %v", lpn, err)
			}
			verified++
		}})
	}
	rig.Kernel.Run()
	if verified != logical {
		t.Fatalf("verified %d of %d", verified, logical)
	}
}

func TestECCPathCorrectsWornReads(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.WithECC = true
	cfg.Params.RawBitErrorPer512B = 0.3
	rig := mustBuild(t, cfg)
	if err := rig.SSD.Preload(8); err != nil {
		t.Fatal(err)
	}
	// Age every block moderately: reads see scattered single-bit errors.
	for c := 0; c < rig.Channel.Chips(); c++ {
		for b := 0; b < cfg.Params.Geometry.BlocksPerLUN; b++ {
			rig.Channel.Chip(c).Wear(b, cfg.Params.MaxPECycles/2)
		}
	}
	failures := 0
	for lpn := 0; lpn < 8; lpn++ {
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				failures++
			}
		}})
	}
	rig.Kernel.Run()
	st := rig.SSD.Stats()
	if st.ECCCorrections == 0 {
		t.Error("ECC corrected nothing on worn blocks")
	}
	if failures != int(st.ECCFailures) {
		t.Errorf("failures=%d but stats say %d", failures, st.ECCFailures)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty SSD config accepted")
	}
	cfg := smallBuild(CtrlHW)
	cfg.Controller = ControllerKind(99)
	if _, err := Build(cfg); err == nil {
		t.Error("unknown controller kind accepted")
	}
}

func TestPreloadValidation(t *testing.T) {
	rig := mustBuild(t, smallBuild(CtrlHW))
	if err := rig.SSD.Preload(rig.FTL.LogicalPages() + 1); err == nil {
		t.Error("oversized preload accepted")
	}
}

func TestGCWithCopyback(t *testing.T) {
	cfg := smallBuild(CtrlBabolRTOS)
	cfg.Ways = 1
	cfg.UseCopyback = true
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 4, QueueDepth: 1, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 || res.Completed != logical*4 {
		t.Fatalf("completed %d, failed %d", res.Completed, res.Failed)
	}
	st := rig.SSD.Stats()
	if st.GCCycles == 0 || st.GCCopybacks == 0 {
		t.Errorf("copyback GC did not run: %+v", st)
	}
	if err := rig.FTL.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// All data intact after copyback-based GC.
	verified := 0
	for lpn := 0; lpn < logical; lpn++ {
		lpn := lpn
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: lpn, Done: func(err error) {
			if err != nil {
				t.Errorf("read LPN %d: %v", lpn, err)
			}
			verified++
		}})
	}
	rig.Kernel.Run()
	if verified != logical {
		t.Fatalf("verified %d/%d", verified, logical)
	}
	// And verify content correctness for a sample LPN.
	loc, ok := rig.FTL.Lookup(3)
	if !ok {
		t.Fatal("LPN 3 unmapped")
	}
	page, err := rig.Channel.Chip(loc.Chip).PeekPage(loc.Row)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 512)
	FillPattern(want, 3)
	for i := range want {
		if page[i] != want[i] {
			t.Fatalf("post-copyback content wrong at byte %d", i)
		}
	}
}

func TestCopybackIgnoredOnHWBackend(t *testing.T) {
	// The hardware baseline has no copyback FSM; the flag must fall back
	// to read+program GC without error.
	cfg := smallBuild(CtrlHW)
	cfg.Ways = 1
	cfg.UseCopyback = true
	rig := mustBuild(t, cfg)
	logical := rig.FTL.LogicalPages()
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindWrite,
		NumOps: logical * 3, QueueDepth: 1, LogicalPages: logical,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Kernel.Run()
	if res.Failed != 0 {
		t.Fatalf("%d failed", res.Failed)
	}
	st := rig.SSD.Stats()
	if st.GCCopybacks != 0 {
		t.Error("HW backend claimed copybacks")
	}
	if st.GCCycles == 0 {
		t.Error("fallback GC did not run")
	}
}
