package ftl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/onfi"
)

func testGeo() onfi.Geometry {
	return onfi.Geometry{Planes: 1, BlocksPerLUN: 8, PagesPerBlk: 4, PageBytes: 512}
}

func newTestFTL(t *testing.T, chips int) *FTL {
	t.Helper()
	f, err := New(testGeo(), chips, 2)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	if _, err := New(testGeo(), 0, 1); err == nil {
		t.Error("zero chips accepted")
	}
	if _, err := New(testGeo(), 1, 0); err == nil {
		t.Error("zero reserve accepted")
	}
	if _, err := New(testGeo(), 1, 8); err == nil {
		t.Error("reserve = all blocks accepted")
	}
	if _, err := New(onfi.Geometry{}, 1, 1); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestLogicalCapacity(t *testing.T) {
	f := newTestFTL(t, 4)
	// (8-2 blocks) × 4 pages × 4 chips.
	if got := f.LogicalPages(); got != 6*4*4 {
		t.Errorf("LogicalPages = %d", got)
	}
}

func TestWriteStripesAcrossChips(t *testing.T) {
	f := newTestFTL(t, 4)
	seen := map[int]bool{}
	for lpn := 0; lpn < 8; lpn++ {
		loc, err := f.AllocateWrite(lpn)
		if err != nil {
			t.Fatal(err)
		}
		seen[loc.Chip] = true
	}
	if len(seen) != 4 {
		t.Errorf("writes landed on %d chips, want 4", len(seen))
	}
}

func TestLookupAfterWrite(t *testing.T) {
	f := newTestFTL(t, 2)
	if _, ok := f.Lookup(5); ok {
		t.Error("unwritten LPN resolves")
	}
	loc, err := f.AllocateWrite(5)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := f.Lookup(5)
	if !ok || got != loc {
		t.Errorf("Lookup = %+v ok=%v, want %+v", got, ok, loc)
	}
	if _, ok := f.Lookup(-1); ok {
		t.Error("negative LPN resolves")
	}
	if _, ok := f.Lookup(1 << 20); ok {
		t.Error("huge LPN resolves")
	}
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	f := newTestFTL(t, 1)
	first, err := f.AllocateWrite(0)
	if err != nil {
		t.Fatal(err)
	}
	second, err := f.AllocateWrite(0)
	if err != nil {
		t.Fatal(err)
	}
	if first == second {
		t.Error("overwrite reused the same physical page")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if f.LivePages(0) != 1 {
		t.Errorf("live pages = %d, want 1", f.LivePages(0))
	}
}

func TestInvalidate(t *testing.T) {
	f := newTestFTL(t, 1)
	f.AllocateWrite(3)
	f.Invalidate(3)
	if _, ok := f.Lookup(3); ok {
		t.Error("invalidated LPN still resolves")
	}
	f.Invalidate(3)  // double invalidate is a no-op
	f.Invalidate(-1) // out of range is a no-op
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGCCycle(t *testing.T) {
	f := newTestFTL(t, 1)
	// Fill the logical space, then overwrite half to create garbage.
	logical := f.LogicalPages()
	for lpn := 0; lpn < logical; lpn++ {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatalf("fill lpn %d: %v", lpn, err)
		}
	}
	if !f.NeedsGC(0) {
		t.Fatal("chip should need GC after filling")
	}
	for lpn := 0; lpn < logical/2; lpn++ {
		f.Invalidate(lpn)
	}
	block, live, ok := f.GCCandidate(0)
	if !ok {
		t.Fatal("no GC candidate")
	}
	// Greedy: candidate must be among the emptiest sealed blocks.
	for _, lpn := range live {
		if _, err := f.RelocateForGC(lpn); err != nil {
			t.Fatalf("relocate %d: %v", lpn, err)
		}
	}
	f.OnErased(0, block)
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.GCErases != 1 || st.GCMoves != uint64(len(live)) {
		t.Errorf("stats: %+v", st)
	}
	if st.WriteAmplification() < 1 {
		t.Errorf("WA = %v", st.WriteAmplification())
	}
}

func TestOnErasedWithLivePagesPanics(t *testing.T) {
	f := newTestFTL(t, 1)
	loc, _ := f.AllocateWrite(0)
	defer func() {
		if recover() == nil {
			t.Error("erasing a block with live pages did not panic")
		}
	}()
	// Seal it first so state is plausible; block 0 page frontier doesn't
	// matter for the panic.
	f.OnErased(loc.Chip, loc.Row.Block)
}

func TestOutOfSpace(t *testing.T) {
	geo := testGeo()
	f, err := New(geo, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Write every physical page without ever invalidating: logical
	// capacity is (8-1)*4 = 28 pages; physical is 32. Writing 28 unique
	// LPNs plus 4 overwrites fills all blocks.
	for lpn := 0; lpn < f.LogicalPages(); lpn++ {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatalf("lpn %d: %v", lpn, err)
		}
	}
	// Four more writes land on the last free block; with zero free
	// blocks left and garbage scattered, eventually allocation fails.
	var allocErr error
	for i := 0; i < 8 && allocErr == nil; i++ {
		_, allocErr = f.AllocateWrite(i)
	}
	if allocErr == nil {
		t.Error("allocation never failed without GC")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateWriteRange(t *testing.T) {
	f := newTestFTL(t, 1)
	if _, err := f.AllocateWrite(-1); err == nil {
		t.Error("negative LPN accepted")
	}
	if _, err := f.AllocateWrite(f.LogicalPages()); err == nil {
		t.Error("out-of-range LPN accepted")
	}
}

// Property: after an arbitrary storm of writes/overwrites/invalidates
// with interleaved GC, the mapping invariants hold and every live LPN
// resolves to a unique physical page.
func TestMappingInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ftl, err := New(testGeo(), 2, 2)
		if err != nil {
			return false
		}
		logical := ftl.LogicalPages()
		// gc reclaims the emptiest sealed block on a chip, as the SSD
		// assembly would.
		gc := func(chip int) bool {
			block, live, ok := ftl.GCCandidate(chip)
			if !ok {
				return false
			}
			for _, l := range live {
				if _, err := ftl.RelocateForGC(l); err != nil {
					return false
				}
			}
			ftl.OnErased(chip, block)
			return true
		}
		for i := 0; i < 300; i++ {
			lpn := rng.Intn(logical)
			switch rng.Intn(3) {
			case 0, 1:
				if _, err := ftl.AllocateWrite(lpn); err != nil {
					t.Logf("seed %d iter %d: allocation failed despite watermark GC: %v", seed, i, err)
					return false
				}
				// Proactive GC at the reserve watermark, as a real FTL
				// runs it — waiting for hard out-of-space is too late.
				for chip := 0; chip < 2; chip++ {
					for ftl.NeedsGC(chip) {
						if !gc(chip) {
							break
						}
					}
				}
			case 2:
				ftl.Invalidate(lpn)
			}
		}
		if err := ftl.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		// Uniqueness of physical pages among live LPNs.
		seen := map[Location]bool{}
		for lpn := 0; lpn < logical; lpn++ {
			loc, ok := ftl.Lookup(lpn)
			if !ok {
				continue
			}
			if seen[loc] {
				t.Logf("duplicate physical page %+v", loc)
				return false
			}
			seen[loc] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestWearAwareAllocation(t *testing.T) {
	f := newTestFTL(t, 1)
	// Pre-skew the FTL's wear view by erasing one block many times.
	loc, err := f.AllocateWrite(0)
	if err != nil {
		t.Fatal(err)
	}
	f.Invalidate(0)
	// Seal the block artificially by filling it, then GC it repeatedly.
	for i := 0; i < 3; i++ {
		if _, err := f.AllocateWrite(i + 1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i <= 3; i++ {
		f.Invalidate(i)
	}
	victim, live, ok := f.GCCandidate(0)
	if !ok || len(live) != 0 {
		t.Fatalf("candidate: %v live=%d", ok, len(live))
	}
	for i := 0; i < 5; i++ {
		f.OnErased(0, victim)
		// Take it out of the free list again by marking it active via a
		// direct wear bump instead (erase-count bookkeeping only).
		if i < 4 {
			cs := &f.chipsArr[0]
			for j, b := range cs.freeList {
				if b == victim {
					cs.freeList = append(cs.freeList[:j], cs.freeList[j+1:]...)
					cs.blocks[victim].sealed = true
					break
				}
			}
		}
	}
	if f.BlockWear(0, victim) != 5 {
		t.Fatalf("wear = %d", f.BlockWear(0, victim))
	}
	// New allocations must prefer never-erased blocks over the worn one.
	for lpn := 10; lpn < 14; lpn++ {
		loc2, err := f.AllocateWrite(lpn)
		if err != nil {
			t.Fatal(err)
		}
		if loc2.Row.Block == victim {
			t.Fatalf("allocator picked the worn block %d over fresh ones", victim)
		}
	}
	if f.WearSpread(0) != 5 {
		t.Errorf("WearSpread = %d", f.WearSpread(0))
	}
	if f.BlockWear(-1, 0) != 0 || f.BlockWear(0, -1) != 0 || f.WearSpread(9) != 0 {
		t.Error("out-of-range wear accessors should be zero")
	}
	_ = loc
}

func TestRelocateForGCOn(t *testing.T) {
	f := newTestFTL(t, 2)
	if _, err := f.AllocateWrite(0); err != nil {
		t.Fatal(err)
	}
	loc, err := f.RelocateForGCOn(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if loc.Chip != 1 {
		t.Errorf("relocation landed on chip %d, want 1", loc.Chip)
	}
	got, ok := f.Lookup(0)
	if !ok || got != loc {
		t.Error("mapping not updated")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RelocateForGCOn(-1, 0); err == nil {
		t.Error("bad chip accepted")
	}
	if _, err := f.RelocateForGCOn(0, -1); err == nil {
		t.Error("bad LPN accepted")
	}
	if _, err := f.RelocateForGCOn(0, 1<<30); err == nil {
		t.Error("huge LPN accepted")
	}
}

func TestForceSealGC(t *testing.T) {
	f := newTestFTL(t, 1)
	// Nothing staged: no-op.
	if f.ForceSealGC(0) {
		t.Error("sealed a nonexistent GC block")
	}
	if f.ForceSealGC(-1) || f.ForceSealGC(5) {
		t.Error("out-of-range chips sealed")
	}
	// Open the GC stream with one relocation, then seal it.
	if _, err := f.AllocateWrite(0); err != nil {
		t.Fatal(err)
	}
	loc, err := f.RelocateForGCOn(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !f.ForceSealGC(0) {
		t.Fatal("GC stream not sealed")
	}
	// The sealed block is now a GC candidate (it holds one live page).
	found := false
	for {
		block, live, ok := f.GCCandidate(0)
		if !ok {
			break
		}
		if block == loc.Row.Block {
			found = len(live) == 1
		}
		break
	}
	if !found {
		t.Error("force-sealed block not offered as candidate")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAccessors(t *testing.T) {
	f := newTestFTL(t, 3)
	if f.Chips() != 3 {
		t.Error("Chips")
	}
	if f.Geometry() != testGeo() {
		t.Error("Geometry")
	}
	if f.FreeBlocks(0) != testGeo().BlocksPerLUN {
		t.Errorf("FreeBlocks = %d", f.FreeBlocks(0))
	}
	var s Stats
	if s.WriteAmplification() != 0 {
		t.Error("WA of empty stats")
	}
}

// TestRetireActiveBlockMidWrite pins down the write-vs-retirement race:
// a host write has been allocated a page in the chip's active block and
// its program is still in flight when another write's media FAIL retires
// that same block. The retired block must leave both the free list and
// the active stream, the in-flight write's mapping must stay addressable
// (its data still lands), and the next allocation must open a different
// block cleanly.
func TestRetireActiveBlockMidWrite(t *testing.T) {
	f := newTestFTL(t, 1)
	inFlight, err := f.AllocateWrite(1)
	if err != nil {
		t.Fatal(err)
	}
	victim := inFlight.Row.Block

	// The program for LPN 1 is "in flight" when the block is retired.
	f.RetireBlock(0, victim)

	// The mapping survives retirement: the program still lands and the
	// page must remain readable until the host overwrites it.
	if loc, ok := f.Lookup(1); !ok || loc != inFlight {
		t.Fatalf("in-flight mapping lost: got %+v %v, want %+v", loc, ok, inFlight)
	}

	// A write racing the retirement re-allocates cleanly, elsewhere.
	next, err := f.AllocateWrite(2)
	if err != nil {
		t.Fatalf("write racing retirement failed: %v", err)
	}
	if next.Row.Block == victim {
		t.Fatalf("allocation reused retired block %d", victim)
	}

	// The retired block is never selected again — not by further host
	// writes, not by GC.
	for lpn := 3; ; lpn++ {
		loc, err := f.AllocateWrite(lpn)
		if err != nil {
			break // chip full; every allocation avoided the bad block
		}
		if loc.Row.Block == victim {
			t.Fatalf("LPN %d allocated in retired block %d", lpn, victim)
		}
	}
	if block, _, ok := f.GCCandidate(0); ok && block == victim {
		t.Fatalf("GC picked retired block %d", victim)
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestOfflineChipClosesStreams(t *testing.T) {
	f := newTestFTL(t, 2)
	if _, err := f.AllocateWrite(1); err != nil {
		t.Fatal(err)
	}
	f.OfflineChip(0)
	if !f.ChipOffline(0) {
		t.Fatal("chip 0 not reported offline")
	}
	// The mapping is kept (data may be partly recoverable offline) but
	// every new allocation lands on the surviving chip.
	if _, ok := f.Lookup(1); !ok {
		t.Error("offlining dropped an existing mapping")
	}
	for lpn := 2; lpn < 10; lpn++ {
		loc, err := f.AllocateWrite(lpn)
		if err != nil {
			t.Fatalf("LPN %d: %v", lpn, err)
		}
		if loc.Chip == 0 {
			t.Fatalf("LPN %d allocated on offline chip", lpn)
		}
	}
	if f.NeedsGC(0) {
		t.Error("offline chip still asks for GC")
	}
	if _, _, ok := f.GCCandidate(0); ok {
		t.Error("offline chip still offers GC candidates")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
