// Package ftl implements a page-level Flash Translation Layer for one
// channel: logical-to-physical mapping, a striped write allocator that
// spreads load across the channel's chips, greedy garbage collection,
// and wear accounting.
//
// The FTL is a pure policy module: it decides *where* pages live and
// *what* to move, while the SSD assembly (internal/ssd) executes the
// resulting flash operations through a controller. That separation
// mirrors Figure 1, where the FTL requests page- and block-level
// operations that the Storage Controller implements.
package ftl

import (
	"fmt"

	"repro/internal/onfi"
)

// Location is a physical page address on the channel.
type Location struct {
	Chip int
	Row  onfi.RowAddr
}

// invalidLPN marks a physical page holding no live logical page.
const invalidLPN = -1

// blockState tracks one physical block.
type blockState struct {
	nextPage int   // write frontier within the block
	valid    int   // live pages
	lpns     []int // reverse map: page → LPN (or invalidLPN)
	sealed   bool  // fully written
	bad      bool  // retired: never allocated or collected again
}

// chipState tracks allocation on one chip. Host and GC writes use
// separate active blocks ("streams"): GC must always be able to relocate
// a victim's live pages, so the host may never consume the space GC
// opened for itself.
type chipState struct {
	blocks    []blockState
	freeList  []int // erased blocks available for allocation
	active    int   // block accepting host writes (-1 none)
	activeGC  int   // block accepting GC relocations (-1 none)
	erases    int
	livePages int
	wear      []int // per-block erase counts (FTL's own view)
	// offline removes the chip from every allocation and GC decision
	// after the controller declared it dead (see OfflineChip).
	offline bool
}

// FTL maps logical pages onto a channel of identical chips.
type FTL struct {
	geo      onfi.Geometry
	chips    int
	reserved int // blocks per chip kept free for GC (over-provisioning)

	l2p      []Location // LPN → location
	mapped   []bool
	chipRR   int // round-robin write-striping cursor
	chipsArr []chipState

	stats Stats
}

// Stats counts FTL activity.
type Stats struct {
	HostWrites  uint64 // logical page writes accepted
	FlashWrites uint64 // physical page programs issued (host + GC)
	GCMoves     uint64 // live pages relocated by GC
	GCErases    uint64
	BadBlocks   uint64 // blocks retired after program/erase failures
}

// WriteAmplification reports flash writes per host write.
func (s Stats) WriteAmplification() float64 {
	if s.HostWrites == 0 {
		return 0
	}
	return float64(s.FlashWrites) / float64(s.HostWrites)
}

// New builds an FTL over `chips` identical chips with the given geometry.
// reservedBlocks per chip are withheld from the logical capacity as GC
// headroom (over-provisioning); at least one is required.
func New(geo onfi.Geometry, chips, reservedBlocks int) (*FTL, error) {
	if err := geo.Validate(); err != nil {
		return nil, err
	}
	if chips <= 0 {
		return nil, fmt.Errorf("ftl: need at least one chip, got %d", chips)
	}
	if reservedBlocks < 1 || reservedBlocks >= geo.BlocksPerLUN {
		return nil, fmt.Errorf("ftl: reserved blocks %d out of range [1,%d)", reservedBlocks, geo.BlocksPerLUN)
	}
	f := &FTL{geo: geo, chips: chips, reserved: reservedBlocks}
	logical := f.LogicalPages()
	f.l2p = make([]Location, logical)
	f.mapped = make([]bool, logical)
	f.chipsArr = make([]chipState, chips)
	for c := range f.chipsArr {
		cs := &f.chipsArr[c]
		cs.blocks = make([]blockState, geo.BlocksPerLUN)
		cs.wear = make([]int, geo.BlocksPerLUN)
		cs.active = -1
		cs.activeGC = -1
		for b := range cs.blocks {
			cs.blocks[b].lpns = newLPNSlice(geo.PagesPerBlk)
			cs.freeList = append(cs.freeList, b)
		}
	}
	return f, nil
}

func newLPNSlice(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = invalidLPN
	}
	return s
}

// LogicalPages reports the exported logical capacity in pages.
func (f *FTL) LogicalPages() int {
	return f.chips * (f.geo.BlocksPerLUN - f.reserved) * f.geo.PagesPerBlk
}

// Geometry returns the per-chip geometry.
func (f *FTL) Geometry() onfi.Geometry { return f.geo }

// Chips reports the channel width the FTL manages.
func (f *FTL) Chips() int { return f.chips }

// Stats returns a snapshot of the counters.
func (f *FTL) Stats() Stats { return f.stats }

// Lookup translates a logical page number. ok is false for never-written
// pages.
func (f *FTL) Lookup(lpn int) (Location, bool) {
	if lpn < 0 || lpn >= len(f.l2p) {
		return Location{}, false
	}
	return f.l2p[lpn], f.mapped[lpn]
}

// AllocateWrite assigns the next physical page for a host write of lpn,
// invalidating any previous mapping, and returns where to program. The
// caller must then actually program the page and, on success, keep the
// mapping (on program failure call Invalidate and retry).
func (f *FTL) AllocateWrite(lpn int) (Location, error) {
	loc, err := f.allocate(lpn, false)
	if err != nil {
		return loc, err
	}
	f.stats.HostWrites++
	f.stats.FlashWrites++
	return loc, nil
}

// allocate places lpn on some chip. Host allocations (gc=false) must
// leave one free block per chip untouched as GC headroom: garbage
// collection needs somewhere to relocate live pages, and granting the
// host the last block would deadlock a full drive.
func (f *FTL) allocate(lpn int, gc bool) (Location, error) {
	if lpn < 0 || lpn >= len(f.l2p) {
		return Location{}, fmt.Errorf("ftl: LPN %d out of range [0,%d)", lpn, len(f.l2p))
	}
	// Find a chip with space first: a failed write must leave any
	// existing mapping (and its data) intact.
	chip := -1
	for try := 0; try < f.chips; try++ {
		c := (f.chipRR + try) % f.chips
		if f.hasSpace(&f.chipsArr[c], gc) {
			chip = c
			break
		}
	}
	if chip < 0 {
		return Location{}, fmt.Errorf("ftl: out of space (GC required on all chips)")
	}
	// Drop the stale copy, then place the new one (striping round-robin).
	if f.mapped[lpn] {
		f.invalidate(f.l2p[lpn])
		f.mapped[lpn] = false
	}
	loc, ok := f.allocateOn(chip, &f.chipsArr[chip], lpn, gc)
	if !ok {
		return Location{}, fmt.Errorf("ftl: chip %d lost its space mid-allocation", chip)
	}
	f.chipRR = (chip + 1) % f.chips
	return loc, nil
}

// hasSpace reports whether a chip can accept one more page write in the
// given stream under the GC-headroom rule: the host may never open the
// last free block.
func (f *FTL) hasSpace(cs *chipState, gc bool) bool {
	if cs.offline {
		return false
	}
	if gc {
		return cs.activeGC >= 0 || len(cs.freeList) > 0
	}
	return cs.active >= 0 || len(cs.freeList) > 1
}

func (f *FTL) allocateOn(chip int, cs *chipState, lpn int, gc bool) (Location, bool) {
	stream := &cs.active
	if gc {
		stream = &cs.activeGC
	}
	if *stream < 0 {
		if !f.hasSpace(cs, gc) {
			return Location{}, false
		}
		// Wear-aware allocation: open the least-worn free block, so
		// erase cycles spread evenly instead of hammering whichever
		// block happens to sit at the list head (dynamic wear leveling).
		pick := 0
		for i := 1; i < len(cs.freeList); i++ {
			if cs.wear[cs.freeList[i]] < cs.wear[cs.freeList[pick]] {
				pick = i
			}
		}
		*stream = cs.freeList[pick]
		cs.freeList = append(cs.freeList[:pick], cs.freeList[pick+1:]...)
	}
	blk := &cs.blocks[*stream]
	row := onfi.RowAddr{Block: *stream, Page: blk.nextPage}
	blk.lpns[blk.nextPage] = lpn
	blk.valid++
	blk.nextPage++
	cs.livePages++
	if blk.nextPage == f.geo.PagesPerBlk {
		blk.sealed = true
		*stream = -1
	}
	loc := Location{Chip: chip, Row: row}
	f.l2p[lpn] = loc
	f.mapped[lpn] = true
	return loc, true
}

// Invalidate drops a logical page's mapping (host TRIM, or a failed
// program whose mapping must not survive).
func (f *FTL) Invalidate(lpn int) {
	if lpn < 0 || lpn >= len(f.l2p) || !f.mapped[lpn] {
		return
	}
	f.invalidate(f.l2p[lpn])
	f.mapped[lpn] = false
}

func (f *FTL) invalidate(loc Location) {
	cs := &f.chipsArr[loc.Chip]
	blk := &cs.blocks[loc.Row.Block]
	if blk.lpns[loc.Row.Page] != invalidLPN {
		blk.lpns[loc.Row.Page] = invalidLPN
		blk.valid--
		cs.livePages--
	}
}

// FreeBlocks reports erased blocks available on a chip.
func (f *FTL) FreeBlocks(chip int) int {
	return len(f.chipsArr[chip].freeList)
}

// NeedsGC reports whether a chip has run low on free blocks (at or below
// the reserved watermark).
func (f *FTL) NeedsGC(chip int) bool {
	cs := &f.chipsArr[chip]
	if cs.offline {
		return false
	}
	free := len(cs.freeList)
	if cs.active >= 0 {
		free++
	}
	return free <= f.reserved
}

// GCCandidate picks the sealed block with the fewest live pages on a
// chip (greedy policy) and returns its live logical pages. ok is false
// when no sealed block exists.
func (f *FTL) GCCandidate(chip int) (block int, liveLPNs []int, ok bool) {
	cs := &f.chipsArr[chip]
	if cs.offline {
		return 0, nil, false
	}
	best, bestValid := -1, int(^uint(0)>>1)
	for b := range cs.blocks {
		blk := &cs.blocks[b]
		if !blk.sealed || blk.bad {
			continue
		}
		if blk.valid < bestValid {
			best, bestValid = b, blk.valid
		}
	}
	if best < 0 {
		return 0, nil, false
	}
	blk := &cs.blocks[best]
	for p, lpn := range blk.lpns {
		_ = p
		if lpn != invalidLPN {
			liveLPNs = append(liveLPNs, lpn)
		}
	}
	return best, liveLPNs, true
}

// RelocateForGC re-allocates a live page during GC: it assigns a new
// physical page for lpn (counting a flash write but not a host write)
// and returns the destination. The caller copies the data and erases the
// victim afterwards.
func (f *FTL) RelocateForGC(lpn int) (Location, error) {
	loc, err := f.allocate(lpn, true)
	if err != nil {
		return loc, err
	}
	f.stats.FlashWrites++
	f.stats.GCMoves++
	return loc, nil
}

// RelocateForGCOn is RelocateForGC pinned to one chip, for relocation
// mechanisms that cannot cross chips (NAND copyback moves data inside a
// single LUN). It fails only if the chip's GC stream is out of space,
// which the headroom rule prevents.
func (f *FTL) RelocateForGCOn(chip, lpn int) (Location, error) {
	if chip < 0 || chip >= f.chips {
		return Location{}, fmt.Errorf("ftl: chip %d out of range", chip)
	}
	if lpn < 0 || lpn >= len(f.l2p) {
		return Location{}, fmt.Errorf("ftl: LPN %d out of range [0,%d)", lpn, len(f.l2p))
	}
	cs := &f.chipsArr[chip]
	if !f.hasSpace(cs, true) {
		return Location{}, fmt.Errorf("ftl: chip %d GC stream out of space", chip)
	}
	if f.mapped[lpn] {
		f.invalidate(f.l2p[lpn])
		f.mapped[lpn] = false
	}
	loc, ok := f.allocateOn(chip, cs, lpn, true)
	if !ok {
		return Location{}, fmt.Errorf("ftl: chip %d lost GC space mid-allocation", chip)
	}
	f.stats.FlashWrites++
	f.stats.GCMoves++
	return loc, nil
}

// RetireBlock permanently removes a block from service after the media
// reported a program or erase failure (grown bad block). Live pages the
// caller could not relocate must be invalidated separately; the block is
// dropped from the free list and from both write streams and will never
// be selected again.
func (f *FTL) RetireBlock(chip, block int) {
	if chip < 0 || chip >= f.chips {
		return
	}
	cs := &f.chipsArr[chip]
	if block < 0 || block >= len(cs.blocks) || cs.blocks[block].bad {
		return
	}
	blk := &cs.blocks[block]
	blk.bad = true
	blk.sealed = true
	f.stats.BadBlocks++
	for i, b := range cs.freeList {
		if b == block {
			cs.freeList = append(cs.freeList[:i], cs.freeList[i+1:]...)
			break
		}
	}
	if cs.active == block {
		cs.active = -1
	}
	if cs.activeGC == block {
		cs.activeGC = -1
	}
}

// OfflineChip removes a chip from service after the controller
// declared it dead (unresponsive through RESET recovery): both write
// streams close, the chip stops being an allocation target, and GC
// never selects it again. Mappings that point at the chip are kept —
// the data may be partly recoverable offline — but reads against them
// are the caller's problem to fail fast.
func (f *FTL) OfflineChip(chip int) {
	if chip < 0 || chip >= f.chips {
		return
	}
	cs := &f.chipsArr[chip]
	cs.offline = true
	cs.active = -1
	cs.activeGC = -1
}

// ChipOffline reports whether a chip was removed from service.
func (f *FTL) ChipOffline(chip int) bool {
	if chip < 0 || chip >= f.chips {
		return false
	}
	return f.chipsArr[chip].offline
}

// ForceSealGC closes a chip's partially written GC-stream block so it
// becomes a collection candidate, wasting its unwritten pages. FTLs do
// this when the drive wedges with all garbage trapped in the open GC
// block: relocated pages that the host has since overwritten are dead,
// but an unsealed block can never be picked as a victim. Reports whether
// a block was sealed.
func (f *FTL) ForceSealGC(chip int) bool {
	if chip < 0 || chip >= f.chips {
		return false
	}
	cs := &f.chipsArr[chip]
	if cs.activeGC < 0 {
		return false
	}
	cs.blocks[cs.activeGC].sealed = true
	cs.activeGC = -1
	return true
}

// OnErased returns a block to a chip's free pool after the physical
// erase completed. Erasing a block that still holds live pages is a
// caller bug and panics.
func (f *FTL) OnErased(chip, block int) {
	cs := &f.chipsArr[chip]
	blk := &cs.blocks[block]
	if blk.valid != 0 {
		panic(fmt.Sprintf("ftl: erasing block %d on chip %d with %d live pages", block, chip, blk.valid))
	}
	for i := range blk.lpns {
		blk.lpns[i] = invalidLPN
	}
	blk.nextPage = 0
	blk.sealed = false
	cs.erases++
	cs.wear[block]++
	cs.freeList = append(cs.freeList, block)
	f.stats.GCErases++
}

// WearSpread reports max−min erase counts across a chip's healthy
// blocks — the metric dynamic wear leveling bounds.
func (f *FTL) WearSpread(chip int) int {
	if chip < 0 || chip >= f.chips {
		return 0
	}
	cs := &f.chipsArr[chip]
	min, max, seen := 0, 0, false
	for b := range cs.blocks {
		if cs.blocks[b].bad {
			continue
		}
		w := cs.wear[b]
		if !seen {
			min, max, seen = w, w, true
			continue
		}
		if w < min {
			min = w
		}
		if w > max {
			max = w
		}
	}
	return max - min
}

// BlockWear reports the FTL-tracked erase count of one block.
func (f *FTL) BlockWear(chip, block int) int {
	if chip < 0 || chip >= f.chips {
		return 0
	}
	cs := &f.chipsArr[chip]
	if block < 0 || block >= len(cs.wear) {
		return 0
	}
	return cs.wear[block]
}

// LivePages reports mapped logical pages on a chip.
func (f *FTL) LivePages(chip int) int { return f.chipsArr[chip].livePages }

// CheckInvariants verifies the bidirectional mapping consistency. Tests
// and the property suite call it after mutation storms.
func (f *FTL) CheckInvariants() error {
	// Every mapped LPN's location must point back at it.
	for lpn, ok := range f.mapped {
		if !ok {
			continue
		}
		loc := f.l2p[lpn]
		blk := &f.chipsArr[loc.Chip].blocks[loc.Row.Block]
		if got := blk.lpns[loc.Row.Page]; got != lpn {
			return fmt.Errorf("ftl: L2P says LPN %d at %+v but reverse map says %d", lpn, loc, got)
		}
	}
	// Valid counters must match the reverse maps.
	for c := range f.chipsArr {
		cs := &f.chipsArr[c]
		live := 0
		for b := range cs.blocks {
			n := 0
			for _, lpn := range cs.blocks[b].lpns {
				if lpn != invalidLPN {
					n++
				}
			}
			if n != cs.blocks[b].valid {
				return fmt.Errorf("ftl: chip %d block %d valid=%d but reverse map has %d", c, b, cs.blocks[b].valid, n)
			}
			live += n
		}
		if live != cs.livePages {
			return fmt.Errorf("ftl: chip %d livePages=%d but blocks hold %d", c, cs.livePages, live)
		}
	}
	return nil
}
