package ssd

import (
	"testing"

	"repro/internal/hic"
	"repro/internal/sim"
)

// TestTrimInvalidatesMapping pins the deallocate semantics: after a
// trim, the LPN is unmapped, its stats counter ticks, and a subsequent
// read completes as an unwritten page (zero-fill, no flash traffic).
func TestTrimInvalidatesMapping(t *testing.T) {
	rig := mustBuild(t, smallBuild(CtrlBabolRTOS))
	if err := rig.SSD.Preload(8); err != nil {
		t.Fatal(err)
	}
	if _, ok := rig.FTL.Lookup(3); !ok {
		t.Fatal("LPN 3 unmapped after preload")
	}
	var sequence []error
	rig.SSD.Submit(hic.Command{Kind: hic.KindTrim, LPN: 3, Done: func(err error) {
		sequence = append(sequence, err)
		rig.SSD.Submit(hic.Command{Kind: hic.KindRead, LPN: 3, Done: func(err error) {
			sequence = append(sequence, err)
		}})
	}})
	rig.Kernel.Run()
	if len(sequence) != 2 || sequence[0] != nil || sequence[1] != nil {
		t.Fatalf("completions: %v", sequence)
	}
	if _, ok := rig.FTL.Lookup(3); ok {
		t.Error("LPN 3 still mapped after trim")
	}
	if got := rig.SSD.Stats().HostTrims; got != 1 {
		t.Errorf("HostTrims = %d, want 1", got)
	}
	// Trimming an already-unmapped LPN is a harmless no-op.
	done := false
	rig.SSD.Submit(hic.Command{Kind: hic.KindTrim, LPN: 3, Done: func(err error) {
		if err != nil {
			t.Error(err)
		}
		done = true
	}})
	rig.Kernel.Run()
	if !done {
		t.Fatal("second trim never completed")
	}
}

// TestTrimWaitsForInFlightProgram pins the ordering contract: a trim of
// an LPN with an in-flight program parks until the program lands — it
// completes when the write does, not at its own arrival — and it still
// unmaps the page the write just placed.
func TestTrimWaitsForInFlightProgram(t *testing.T) {
	rig := mustBuild(t, smallBuild(CtrlBabolRTOS))
	var writeDone, trimDone sim.Time
	trimAt := 25 * sim.Microsecond
	rig.SSD.Submit(hic.Command{Kind: hic.KindWrite, LPN: 5, Done: func(err error) {
		if err != nil {
			t.Error(err)
		}
		writeDone = rig.Kernel.Now()
	}})
	// Mid-program (TPROG is 50us at this geometry): the PROGRAM is in
	// flight, so the trim must park until it lands.
	rig.Kernel.After(trimAt, func() {
		rig.SSD.Submit(hic.Command{Kind: hic.KindTrim, LPN: 5, Done: func(err error) {
			if err != nil {
				t.Error(err)
			}
			trimDone = rig.Kernel.Now()
		}})
	})
	rig.Kernel.Run()
	if writeDone == 0 || trimDone == 0 {
		t.Fatalf("write done at %v, trim done at %v; both must complete", writeDone, trimDone)
	}
	// A non-parking trim would complete synchronously at its arrival
	// instant; a parked one completes when the program lands.
	if trimDone.Sub(sim.Time(0)) <= sim.Duration(trimAt) {
		t.Errorf("trim completed at %v, at/before its %v arrival — it did not park", trimDone, trimAt)
	}
	if trimDone != writeDone {
		t.Errorf("trim completed at %v but the program landed at %v", trimDone, writeDone)
	}
	if _, ok := rig.FTL.Lookup(5); ok {
		t.Error("LPN 5 still mapped after trim-behind-write")
	}
}

// TestTrimRejectedInReadOnlyMode pins degraded-mode behavior: a
// read-only drive refuses deallocation like it refuses writes.
func TestTrimRejectedInReadOnlyMode(t *testing.T) {
	rig := mustBuild(t, smallBuild(CtrlBabolRTOS))
	if err := rig.SSD.Preload(4); err != nil {
		t.Fatal(err)
	}
	rig.SSD.enterDegraded()
	var got error
	rig.SSD.Submit(hic.Command{Kind: hic.KindTrim, LPN: 1, Done: func(err error) { got = err }})
	rig.Kernel.Run()
	if got != ErrReadOnly {
		t.Fatalf("trim in read-only mode: %v, want ErrReadOnly", got)
	}
	if _, ok := rig.FTL.Lookup(1); !ok {
		t.Error("read-only trim still unmapped the page")
	}
}
