package nand

import (
	"errors"
	"fmt"

	"repro/internal/onfi"
	"repro/internal/pagebuf"
	"repro/internal/sim"
)

// ErrNotSuspendable reports a SUSPEND latched when no PROGRAM/ERASE is
// in flight — typically a benign race where the array finished just
// before the suspend arrived. Callers match it with errors.Is.
var ErrNotSuspendable = errors.New("no suspendable operation in flight")

// decodeState tracks where the LUN's command decoder is within a
// multi-latch command sequence.
type decodeState uint8

const (
	decIdle decodeState = iota
	decReadAddr
	decReadConfirm
	decChgRdColAddr
	decProgramAddr
	decProgramData
	decEraseAddr
	decCopybackAddr
	decPlaneSelAddr
	decReadIDAddr
	decSetFeatAddr
	decSetFeatData
	decGetFeatAddr
)

// arrayOp is the operation currently occupying the flash array.
type arrayOp uint8

const (
	arrNone arrayOp = iota
	arrRead
	arrProgram
	arrErase
	arrReset
)

func (o arrayOp) String() string {
	switch o {
	case arrRead:
		return "read"
	case arrProgram:
		return "program"
	case arrErase:
		return "erase"
	case arrReset:
		return "reset"
	default:
		return "none"
	}
}

// outputSource selects what DataOut streams.
type outputSource uint8

const (
	outNone outputSource = iota
	outStatus
	outPage
	outCache
	outID
	outFeature
	outParamPage
)

// tSuspend is the latency of accepting a PROGRAM/ERASE suspend.
const tSuspend = 20 * sim.Microsecond

// tResetIdle is the RESET busy time from an idle state.
const tResetIdle = 5 * sim.Microsecond

// TResetAbort is the RESET busy time when an array operation must be
// aborted — the worst-case RESET latency a recovery flow waits out.
const TResetAbort = 500 * sim.Microsecond

// tParamPage is the array time to fetch the parameter page.
const tParamPage = 25 * sim.Microsecond

// defaultPhase is the DQS phase register's power-on value.
const defaultPhase = 8

// Timing-mode feature encoding (simplified ONFI timing-mode byte): the
// high nibble selects the data interface.
const (
	sdrMode    = 0x00 // asynchronous SDR, ≤50 MT/s
	nvddrMode  = 0x10 // NV-DDR, ≤200 MT/s
	nvddr2Mode = 0x15 // NV-DDR2 mode 5, ≤533 MT/s
)

// MaxRateMT reports the fastest data-burst rate the LUN's current timing
// mode supports. Command/address latches are always legal (ONFI keeps
// them mode-agnostic so a controller can talk to a freshly booted part).
func (l *LUN) MaxRateMT() int {
	mode := l.features[onfi.FeatTimingMode][0]
	switch {
	case mode >= nvddr2Mode:
		return onfi.NVDDR2.MaxRateMT()
	case mode >= nvddrMode:
		return onfi.NVDDR.MaxRateMT()
	default:
		return onfi.SDR.MaxRateMT()
	}
}

// phaseTolerance is how far the phase register may sit from the
// instance's optimum before reads corrupt.
const phaseTolerance = 1

// LUN is one logical unit: a flash array plus its page and cache
// registers and command decoder. The channel bus drives it through Latch,
// DataIn, and DataOut; all methods take the current virtual time so the
// LUN can expire its busy intervals.
type LUN struct {
	params Params
	geo    onfi.Geometry

	// Array contents: row index → page data (no entry = erased). Pages
	// are pooled buffers borrowed from pool; an erase releases them.
	pages map[uint32]*pagebuf.Buf
	// pool supplies full-page buffers for programmed pages, shared
	// process-wide by geometry.
	pool *pagebuf.Pool
	// Per-block erase counts and bad-block marks.
	eraseCount []int
	bad        []bool
	programmed map[uint32]bool

	// Registers.
	pageReg  []byte
	cacheReg []byte
	column   int

	// Decoder state.
	dec       decodeState
	addrBytes []byte
	out       outputSource
	// lastDataOut remembers the data source READ STATUS interrupted, so
	// the ONFI READ MODE command (a bare 00h) can resume it.
	lastDataOut outputSource
	idOffset    int

	// Busy tracking. busyUntil gates command acceptance (RDY);
	// arrayBusyUntil gates the array (ARDY) and can extend past busyUntil
	// during cache operations.
	busyUntil      sim.Time
	arrayBusyUntil sim.Time
	curOp          arrayOp
	curRow         uint32

	// Pending-load bookkeeping: a read in flight deposits loadData into
	// pageReg when the array busy expires. loadData points at loadBuf
	// for plain reads (one buffer reused for the LUN's lifetime) or at a
	// plane buffer for multi-plane reads.
	loadPending bool
	loadData    []byte
	loadBuf     []byte

	// reg is the logical page-register content: either pageReg itself
	// (owned, mutable) or a read-only alias of a stored page, a plane
	// buffer, or the erased template, established by settle so clean
	// reads skip the array→register full-page copies. Mutators call
	// ownReg first; unalias materializes before a pooled source buffer
	// is released.
	reg         []byte
	regAliased  bool   // reg aliases a pooled stored page
	regRow      uint32 // the row reg aliases, when regAliased
	loadAliased bool   // loadData aliases a pooled stored page
	loadRow     uint32 // the row loadData aliases, when loadAliased
	erasedFF    []byte // all-0xFF page backing reads of erased rows

	// Cache-read sequencing.
	cacheRow     uint32
	cachePending bool // a 0x31/0x3F asked for pageReg→cacheReg at ARDY

	// Suspension.
	suspended   bool
	suspendRem  sim.Duration
	suspendedOp arrayOp

	// Mode flags.
	pslcNext bool // next array op runs in pseudo-SLC timing
	features map[onfi.FeatureAddr][4]byte

	// mp stages multi-plane compositions (see multiplane.go).
	mp mpState

	// paramPage caches the rendered ONFI parameter page.
	paramPage []byte
	// phaseOptimal is this instance's clean DQS phase (from Params,
	// defaulted).
	phaseOptimal int

	// Failure flags surfaced in the status register.
	failLast bool
	failPrev bool

	// faults, when non-nil, perturbs array operations (see fault.go).
	faults FaultInjector

	// Stats.
	stats Stats
}

// Stats counts LUN-level activity.
type Stats struct {
	Reads, Programs, Erases uint64
	StatusReads             uint64
	ProtocolErrors          uint64
	InjectedBitErrors       uint64
	SuspendCount, ResumeCnt uint64
}

// NewLUN builds a LUN from params. All blocks start erased with zero wear.
func NewLUN(p Params) (*LUN, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.Geometry
	l := &LUN{
		params:       p,
		geo:          g,
		pages:        make(map[uint32]*pagebuf.Buf),
		pool:         pagebuf.For(g.FullPageBytes()),
		programmed:   make(map[uint32]bool),
		eraseCount:   make([]int, g.BlocksPerLUN),
		bad:          make([]bool, g.BlocksPerLUN),
		pageReg:      make([]byte, g.FullPageBytes()),
		cacheReg:     make([]byte, g.FullPageBytes()),
		loadBuf:      make([]byte, g.FullPageBytes()),
		features:     make(map[onfi.FeatureAddr][4]byte),
		paramPage:    buildParameterPage(p),
		phaseOptimal: p.PhaseOptimal,
	}
	if l.phaseOptimal == 0 {
		l.phaseOptimal = defaultPhase
	}
	l.reg = l.pageReg
	l.erasedFF = make([]byte, g.FullPageBytes())
	for i := range l.erasedFF {
		l.erasedFF[i] = 0xFF
	}
	l.powerOnFeatures()
	return l, nil
}

// powerOnFeatures loads the volatile feature registers with their
// power-on defaults. RESET returns the target to this state (ONFI: SET
// FEATURES settings are volatile and revert on reset).
func (l *LUN) powerOnFeatures() {
	for k := range l.features {
		delete(l.features, k)
	}
	// The phase trim register powers on at its default.
	l.features[onfi.FeatOutputPhase] = [4]byte{defaultPhase}
	// Timing mode register: ONFI mode 5 (NVDDR2) unless the instance
	// powers up in SDR and must be switched by the boot flow.
	if !l.params.BootInSDR {
		l.features[onfi.FeatTimingMode] = [4]byte{nvddr2Mode}
	}
}

// Params returns the LUN's parameter set.
func (l *LUN) Params() Params { return l.params }

// Stats returns a snapshot of the activity counters.
func (l *LUN) Stats() Stats { return l.stats }

// rowIndex flattens a row address.
func (l *LUN) rowIndex(r onfi.RowAddr) uint32 {
	return uint32(r.Block)*uint32(l.geo.PagesPerBlk) + uint32(r.Page)
}

func (l *LUN) rowOf(idx uint32) onfi.RowAddr {
	return onfi.RowAddr{Block: int(idx) / l.geo.PagesPerBlk, Page: int(idx) % l.geo.PagesPerBlk}
}

// jitterFor deterministically scales d by the per-page variation for row.
func (l *LUN) jitterFor(row uint32, d sim.Duration) sim.Duration {
	if l.params.JitterPct == 0 {
		return d
	}
	b := [4]byte{byte(row), byte(row >> 8), byte(row >> 16), byte(row >> 24)}
	// Map hash to [-JitterPct, +JitterPct] percent.
	span := int64(2*l.params.JitterPct + 1)
	pct := int64(fnv1a(b[:]))%span - int64(l.params.JitterPct)
	return d + sim.Duration(int64(d)*pct/100)
}

// Ready reports whether the LUN accepts new commands at time now.
func (l *LUN) Ready(now sim.Time) bool { return now >= l.busyUntil }

// ReadyAt reports when the LUN's R/B# pin deasserts — the dedicated
// ready/busy line hardware controllers monitor instead of polling READ
// STATUS over the shared channel.
func (l *LUN) ReadyAt() sim.Time { return l.busyUntil }

// ArrayReady reports whether the flash array is idle at time now.
func (l *LUN) ArrayReady(now sim.Time) bool { return now >= l.arrayBusyUntil }

// Status computes the status-register byte at time now.
func (l *LUN) Status(now sim.Time) byte {
	l.settle(now)
	var s byte = onfi.StatusWP
	if l.Ready(now) {
		s |= onfi.StatusRDY
	}
	if l.ArrayReady(now) {
		s |= onfi.StatusARDY
	}
	if l.failLast {
		s |= onfi.StatusFail
	}
	if l.failPrev {
		s |= onfi.StatusFailC
	}
	return s
}

// settle applies any state transitions whose time has arrived: pending
// page loads and cache transfers.
func (l *LUN) settle(now sim.Time) {
	// Reads are never suspendable, so a pending load settles regardless of
	// a suspended PROGRAM/ERASE.
	if l.loadPending && now >= l.arrayBusyUntil {
		if &l.loadData[0] == &l.loadBuf[0] {
			// The load was materialized into loadBuf (fault corruption or
			// wear-injected errors): swap the buffers in place of a
			// full-page copy.
			l.pageReg, l.loadBuf = l.loadBuf, l.pageReg
			l.reg = l.pageReg
			l.regAliased = false
		} else {
			// Clean load: the register aliases the source until a mutator
			// claims it (ownReg) — no page copy on the read hot path.
			l.reg = l.loadData
			l.regAliased = l.loadAliased
			l.regRow = l.loadRow
		}
		l.loadAliased = false
		l.loadPending = false
		l.curOp = arrNone
	}
	if l.cachePending && now >= l.arrayBusyUntil {
		copy(l.cacheReg, l.reg)
		l.cachePending = false
	}
}

// setDataOut switches the output source to a data register and records
// it for READ MODE resumption.
func (l *LUN) setDataOut(src outputSource) {
	l.out = src
	l.lastDataOut = src
}

func (l *LUN) protoErr(format string, args ...interface{}) error {
	l.stats.ProtocolErrors++
	return fmt.Errorf("nand/%s: %s", l.params.Name, fmt.Sprintf(format, args...))
}

// Latch feeds one command/address latch burst into the decoder, as the
// Command/Address Writer µFSM would drive it on the pins. The burst may
// carry any legal mix of command and address cycles.
func (l *LUN) Latch(now sim.Time, latches []onfi.Latch) error {
	l.settle(now)
	for _, latch := range latches {
		var err error
		if latch.Kind == onfi.LatchCmd {
			err = l.command(now, onfi.Cmd(latch.Value))
		} else {
			err = l.address(now, latch.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (l *LUN) command(now sim.Time, c onfi.Cmd) error {
	// Commands legal while busy.
	switch c {
	case onfi.CmdReadStatus, onfi.CmdReadStatusEnh:
		l.out = outStatus
		l.dec = decIdle
		l.stats.StatusReads++
		return nil
	case onfi.CmdReset, onfi.CmdSynchronousReset:
		return l.reset(now)
	case onfi.CmdSuspend:
		return l.suspend(now)
	case onfi.CmdResume:
		return l.resume(now)
	}

	if !l.Ready(now) {
		return l.protoErr("command %v while busy until %v (now %v)", c, l.busyUntil, now)
	}

	switch l.dec {
	case decIdle:
		switch c {
		case onfi.CmdRead1:
			l.dec = decReadAddr
			l.addrBytes = l.addrBytes[:0]
		case onfi.CmdChangeReadCol1:
			l.dec = decChgRdColAddr
			l.addrBytes = l.addrBytes[:0]
		case onfi.CmdChangeReadColE1:
			l.dec = decPlaneSelAddr
			l.addrBytes = l.addrBytes[:0]
		case onfi.CmdProgram1:
			l.dec = decProgramAddr
			l.addrBytes = l.addrBytes[:0]
		case onfi.CmdErase1:
			l.dec = decEraseAddr
			l.addrBytes = l.addrBytes[:0]
		case onfi.CmdReadID:
			l.dec = decReadIDAddr
		case onfi.CmdReadParameterPg:
			l.dec = decReadIDAddr
			l.setDataOut(outParamPage)
		case onfi.CmdSetFeatures:
			l.dec = decSetFeatAddr
		case onfi.CmdGetFeatures:
			l.dec = decGetFeatAddr
		case onfi.CmdCopybackProgram:
			// COPYBACK PROGRAM: target address follows; the page
			// register keeps the copyback-read content (unlike 80h,
			// which clears it to all-ones).
			l.dec = decCopybackAddr
			l.addrBytes = l.addrBytes[:0]
		case onfi.CmdPSLCEnable:
			if l.params.TRSLC == 0 {
				return l.protoErr("package does not support pSLC")
			}
			l.pslcNext = true
		case onfi.CmdCacheRead:
			return l.startCacheNext(now)
		case onfi.CmdCacheReadEnd:
			return l.endCache(now)
		default:
			return l.protoErr("unexpected command %v in idle state", c)
		}
	case decReadConfirm:
		switch c {
		case onfi.CmdRead2:
			return l.startRead(now, false)
		case onfi.CmdCacheRead:
			return l.startRead(now, true)
		case onfi.CmdCopybackRead:
			// READ FOR COPYBACK: same array fetch; the register content
			// is then consumed by COPYBACK PROGRAM instead of the bus.
			return l.startRead(now, false)
		case onfi.CmdMPReadQueue:
			return l.queueMPRead(now)
		default:
			return l.protoErr("expected READ confirm, got %v", c)
		}
	case decChgRdColAddr:
		if c == onfi.CmdChangeReadCol2 {
			if len(l.addrBytes) != 2 {
				return l.protoErr("CHANGE READ COLUMN with %d address cycles", len(l.addrBytes))
			}
			col := onfi.DecodeColAddr([2]byte{l.addrBytes[0], l.addrBytes[1]})
			if int(col) >= l.geo.FullPageBytes() {
				return l.protoErr("column %d out of range", col)
			}
			l.column = int(col)
			if l.out != outCache {
				l.setDataOut(outPage)
			}
			l.dec = decIdle
			return nil
		}
		return l.protoErr("expected CHANGE READ COLUMN confirm, got %v", c)
	case decPlaneSelAddr:
		if c == onfi.CmdChangeReadCol2 {
			return l.selectPlane(now)
		}
		return l.protoErr("expected CHANGE READ COLUMN ENHANCED confirm, got %v", c)
	case decProgramData:
		switch c {
		case onfi.CmdProgram2:
			return l.startProgram(now, false)
		case onfi.CmdMPProgramQueue:
			return l.queueMPProgram(now)
		case onfi.CmdCacheProgram2:
			return l.startProgram(now, true)
		case onfi.CmdChangeWriteCol:
			l.dec = decChgRdColAddr // reuse 2-byte column collection
			l.addrBytes = l.addrBytes[:0]
			return nil
		default:
			return l.protoErr("expected PROGRAM confirm, got %v", c)
		}
	case decCopybackAddr:
		if c == onfi.CmdProgram2 {
			return l.startProgram(now, false)
		}
		return l.protoErr("expected COPYBACK PROGRAM confirm, got %v", c)
	case decEraseAddr:
		switch c {
		case onfi.CmdErase2:
			return l.startErase(now)
		case onfi.CmdErase1:
			// Multi-plane erase: stash this plane's row, collect the next.
			if len(l.addrBytes) != 3 {
				return l.protoErr("multi-plane erase with %d address cycles", len(l.addrBytes))
			}
			row := l.geo.DecodeRowAddr([3]byte{l.addrBytes[0], l.addrBytes[1], l.addrBytes[2]})
			l.mp.eraseRows = append(l.mp.eraseRows, row)
			l.addrBytes = l.addrBytes[:0]
			return nil
		}
		return l.protoErr("expected ERASE confirm, got %v", c)
	default:
		return l.protoErr("unexpected command %v in decode state %d", c, l.dec)
	}
	return nil
}

func (l *LUN) address(now sim.Time, b byte) error {
	if !l.Ready(now) {
		return l.protoErr("address cycle while busy")
	}
	switch l.dec {
	case decReadAddr:
		l.addrBytes = append(l.addrBytes, b)
		if len(l.addrBytes) == 5 {
			l.dec = decReadConfirm
		}
	case decChgRdColAddr:
		l.addrBytes = append(l.addrBytes, b)
		if len(l.addrBytes) > 2 {
			return l.protoErr("too many column address cycles")
		}
	case decProgramAddr:
		l.addrBytes = append(l.addrBytes, b)
		if len(l.addrBytes) == 5 {
			var a5 [5]byte
			copy(a5[:], l.addrBytes)
			addr := l.geo.DecodeAddr(a5)
			if err := l.geo.CheckAddr(addr); err != nil {
				return l.protoErr("program address: %v", err)
			}
			l.curRow = l.rowIndex(addr.Row)
			l.column = int(addr.Col)
			// Program loads start from an all-ones register (NAND can
			// only clear bits). The fill overwrites everything, so any
			// alias is simply dropped rather than materialized.
			l.reg = l.pageReg
			l.regAliased = false
			for i := range l.pageReg {
				l.pageReg[i] = 0xFF
			}
			l.dec = decProgramData
		}
	case decPlaneSelAddr:
		l.addrBytes = append(l.addrBytes, b)
		if len(l.addrBytes) > 5 {
			return l.protoErr("too many plane-select address cycles")
		}
	case decCopybackAddr:
		l.addrBytes = append(l.addrBytes, b)
		if len(l.addrBytes) == 5 {
			var a5 [5]byte
			copy(a5[:], l.addrBytes)
			addr := l.geo.DecodeAddr(a5)
			if err := l.geo.CheckAddr(addr); err != nil {
				return l.protoErr("copyback address: %v", err)
			}
			// Target latched; page register untouched — it still holds
			// the copyback-read data. Await the 10h confirm.
			l.curRow = l.rowIndex(addr.Row)
			l.column = int(addr.Col)
		}
		if len(l.addrBytes) > 5 {
			return l.protoErr("too many copyback address cycles")
		}
	case decEraseAddr:
		l.addrBytes = append(l.addrBytes, b)
		if len(l.addrBytes) > 3 {
			return l.protoErr("too many erase address cycles")
		}
	case decReadIDAddr:
		l.idOffset = int(b)
		if l.out == outParamPage {
			// READ PARAMETER PAGE: the array needs time to fetch the
			// page before it can stream out.
			l.column = 0
			l.busyUntil = now.Add(tParamPage)
			l.arrayBusyUntil = l.busyUntil
		} else {
			l.out = outID
			l.column = 0
		}
		l.dec = decIdle
	case decSetFeatAddr:
		l.addrBytes = []byte{b}
		l.dec = decSetFeatData
	case decGetFeatAddr:
		feat := l.features[onfi.FeatureAddr(b)]
		copy(l.cacheReg[:4], feat[:])
		l.out = outFeature
		l.column = 0
		l.dec = decIdle
	default:
		return l.protoErr("unexpected address cycle in decode state %d", l.dec)
	}
	return nil
}

// startRead begins the array read after a READ.1+addr+confirm sequence.
func (l *LUN) startRead(now sim.Time, cache bool) error {
	var a5 [5]byte
	copy(a5[:], l.addrBytes)
	addr := l.geo.DecodeAddr(a5)
	if err := l.geo.CheckAddr(addr); err != nil {
		return l.protoErr("read address: %v", err)
	}
	row := l.rowIndex(addr.Row)
	l.column = int(addr.Col)
	if !cache && len(l.mp.readRows) > 0 {
		return l.finishMPRead(now, row)
	}
	tr := l.params.TR
	if l.pslcNext {
		tr = l.params.TRSLC
		l.pslcNext = false
	}
	tr = l.jitterFor(row, tr)
	var fo FaultOutcome
	if l.faults != nil {
		fo = l.faults.OnRead(now, row)
		tr += fo.Delay
	}
	l.curOp = arrRead
	l.curRow = row
	l.cacheRow = row
	l.loadPending = true
	if src, clean := l.cleanSource(row, fo); clean {
		l.loadData = src
	} else {
		l.loadAliased = false
		l.readArrayInto(row, l.loadBuf)
		if fo.Corrupt {
			corruptBeyondECC(row, l.loadBuf)
		}
		l.loadData = l.loadBuf
	}
	l.arrayBusyUntil = now.Add(tr)
	if fo.Stuck {
		l.arrayBusyUntil = stuckUntil
	}
	if cache {
		// Cache confirm: page goes to cache register when loaded, and
		// the LUN stays RDY for data transfer of the *previous* page.
		l.cachePending = true
		l.setDataOut(outCache)
	} else {
		l.busyUntil = l.arrayBusyUntil
		l.setDataOut(outPage)
	}
	l.dec = decIdle
	l.failPrev = l.failLast
	l.failLast = false
	l.stats.Reads++
	return nil
}

// startCacheNext handles a bare 0x31: load the next sequential page into
// the page register while the cache register is transferred out.
func (l *LUN) startCacheNext(now sim.Time) error {
	if !l.ArrayReady(now) {
		return l.protoErr("cache-read continue while array busy")
	}
	l.settle(now)
	// Current page register content moves to cache for output.
	copy(l.cacheReg, l.reg)
	next := l.cacheRow + 1
	if int(next) >= l.geo.Pages() {
		return l.protoErr("cache read past end of LUN")
	}
	l.cacheRow = next
	l.curOp = arrRead
	l.curRow = next
	l.loadPending = true
	if src, clean := l.cleanSource(next, FaultOutcome{}); clean {
		l.loadData = src
	} else {
		l.loadAliased = false
		l.readArrayInto(next, l.loadBuf)
		l.loadData = l.loadBuf
	}
	l.arrayBusyUntil = now.Add(l.jitterFor(next, l.params.TR))
	l.setDataOut(outCache)
	l.column = 0
	l.stats.Reads++
	return nil
}

// endCache handles 0x3F: transfer the last loaded page to the cache
// register with no further array read.
func (l *LUN) endCache(now sim.Time) error {
	if !l.ArrayReady(now) {
		l.cachePending = true
	} else {
		l.settle(now)
		copy(l.cacheReg, l.reg)
	}
	l.setDataOut(outCache)
	l.column = 0
	return nil
}

func (l *LUN) startProgram(now sim.Time, cached bool) error {
	if !cached && len(l.mp.progRows) > 0 {
		return l.finishMPProgram(now, l.pslcNext)
	}
	row := l.curRow
	block := int(row) / l.geo.PagesPerBlk
	tp := l.params.TPROG
	if l.pslcNext {
		tp = l.params.TPROGSLC
		l.pslcNext = false
	}
	tp = l.jitterFor(row, tp)
	var fo FaultOutcome
	if l.faults != nil {
		fo = l.faults.OnProgram(now, row)
		tp += fo.Delay
	}
	l.failPrev = l.failLast
	l.failLast = false
	switch {
	case fo.Fail:
		// Injected program failure: StatusFail, array unchanged.
		l.failLast = true
	case l.bad[block]:
		l.failLast = true
	case l.programmed[row]:
		// NAND forbids re-programming without an erase.
		l.failLast = true
	default:
		l.storePage(row, l.reg)
	}
	l.curOp = arrProgram
	l.curRow = row
	l.arrayBusyUntil = now.Add(tp)
	if fo.Stuck {
		l.arrayBusyUntil = stuckUntil
	}
	if cached && !fo.Stuck {
		l.busyUntil = now.Add(3 * sim.Microsecond) // register handoff only
	} else {
		l.busyUntil = l.arrayBusyUntil
	}
	l.dec = decIdle
	l.stats.Programs++
	return nil
}

func (l *LUN) startErase(now sim.Time) error {
	if len(l.addrBytes) != 3 {
		return l.protoErr("erase with %d address cycles", len(l.addrBytes))
	}
	row := l.geo.DecodeRowAddr([3]byte{l.addrBytes[0], l.addrBytes[1], l.addrBytes[2]})
	if row.Block < 0 || row.Block >= l.geo.BlocksPerLUN {
		return l.protoErr("erase block %d out of range", row.Block)
	}
	l.failPrev = l.failLast
	l.failLast = false
	var fo FaultOutcome
	if l.faults != nil {
		fo = l.faults.OnErase(now, row.Block)
	}
	rows := append(append([]onfi.RowAddr{}, l.mp.eraseRows...), row)
	l.mp.eraseRows = nil
	var worst sim.Duration
	for _, r := range rows {
		block := r.Block
		if fo.Fail && block == row.Block {
			// Injected erase failure: StatusFail, block unchanged.
			l.failLast = true
		} else if l.bad[block] {
			l.failLast = true
		} else {
			l.eraseCount[block]++
			if l.eraseCount[block] > l.params.MaxPECycles {
				l.bad[block] = true
				l.failLast = true
			} else {
				base := uint32(block) * uint32(l.geo.PagesPerBlk)
				for p := uint32(0); p < uint32(l.geo.PagesPerBlk); p++ {
					l.dropPage(base + p)
					delete(l.programmed, base+p)
				}
			}
		}
		if d := l.jitterFor(uint32(block)*uint32(l.geo.PagesPerBlk), l.params.TBERS); d > worst {
			worst = d
		}
		l.stats.Erases++
	}
	l.stats.Erases-- // the shared accounting below counts one
	l.curOp = arrErase
	l.curRow = uint32(row.Block) * uint32(l.geo.PagesPerBlk)
	l.arrayBusyUntil = now.Add(worst + fo.Delay)
	if fo.Stuck {
		l.arrayBusyUntil = stuckUntil
	}
	l.busyUntil = l.arrayBusyUntil
	l.dec = decIdle
	l.stats.Erases++
	return nil
}

func (l *LUN) reset(now sim.Time) error {
	d := tResetIdle
	if !l.Ready(now) {
		d = TResetAbort // abort in progress
	}
	l.dec = decIdle
	l.out = outNone
	l.loadPending = false
	l.loadAliased = false
	l.cachePending = false
	l.suspended = false
	l.pslcNext = false
	l.failLast = false
	l.mp = mpState{}
	l.curOp = arrReset
	// SET FEATURES settings are volatile: RESET reverts them to their
	// power-on defaults (phase trim, timing mode).
	l.powerOnFeatures()
	l.busyUntil = now.Add(d)
	l.arrayBusyUntil = l.busyUntil
	if l.faults != nil && l.faults.OnReset(now) {
		// Persistent hardware failure: the LUN never comes back from
		// RESET. The controller's only remaining move is offlining it.
		l.busyUntil = stuckUntil
		l.arrayBusyUntil = stuckUntil
	}
	return nil
}

func (l *LUN) suspend(now sim.Time) error {
	if l.suspended {
		return l.protoErr("suspend while already suspended")
	}
	if l.ArrayReady(now) || (l.curOp != arrProgram && l.curOp != arrErase) {
		l.stats.ProtocolErrors++
		return fmt.Errorf("nand/%s: %w", l.params.Name, ErrNotSuspendable)
	}
	l.suspendRem = l.arrayBusyUntil.Sub(now)
	l.suspendedOp = l.curOp
	l.suspended = true
	l.busyUntil = now.Add(tSuspend)
	l.arrayBusyUntil = l.busyUntil
	l.curOp = arrNone
	l.stats.SuspendCount++
	return nil
}

func (l *LUN) resume(now sim.Time) error {
	if !l.suspended {
		return l.protoErr("resume with nothing suspended")
	}
	if !l.Ready(now) {
		return l.protoErr("resume while busy")
	}
	l.suspended = false
	l.curOp = l.suspendedOp
	l.arrayBusyUntil = now.Add(l.suspendRem)
	l.busyUntil = l.arrayBusyUntil
	l.stats.ResumeCnt++
	return nil
}

// readArrayInto fetches row's stored content (0xFF-filled if erased)
// into dst, a full-page buffer, with wear-dependent bit errors injected.
func (l *LUN) readArrayInto(row uint32, dst []byte) {
	if stored, ok := l.pages[row]; ok {
		copy(dst, stored.Bytes())
	} else {
		for i := range dst {
			dst[i] = 0xFF
		}
	}
	l.injectErrors(row, dst)
}

// cleanSource returns a buffer that can back a pending load without a
// copy — the stored page itself, or the erased template — when nothing
// (fault corruption, wear-injected bit errors) would mutate the data.
func (l *LUN) cleanSource(row uint32, fo FaultOutcome) ([]byte, bool) {
	if fo.Corrupt || l.wearActive(row) {
		return nil, false
	}
	if stored, ok := l.pages[row]; ok {
		l.loadAliased = true
		l.loadRow = row
		return stored.Bytes(), true
	}
	l.loadAliased = false
	return l.erasedFF, true
}

// wearActive reports whether injectErrors would flip any bits for row.
// The condition mirrors its early-outs, so clean reads can alias the
// stored page instead of copying it through loadBuf.
func (l *LUN) wearActive(row uint32) bool {
	if l.params.RawBitErrorPer512B == 0 {
		return false
	}
	if l.eraseCount[int(row)/l.geo.PagesPerBlk] == 0 {
		return false
	}
	return l.retryMismatch(row) != 0 || l.params.ReadRetryLevels == 0
}

// ownReg makes the page register mutable: if reg aliases a stored page,
// a plane buffer, or the erased template, its bytes move into pageReg
// first (the deferred copy the alias saved on the read-only path).
func (l *LUN) ownReg() {
	if &l.reg[0] != &l.pageReg[0] {
		copy(l.pageReg, l.reg)
		l.reg = l.pageReg
		l.regAliased = false
	}
}

// unalias materializes any register/load alias of row before its pooled
// buffer is released back to the arena.
func (l *LUN) unalias(row uint32) {
	if l.loadAliased && l.loadRow == row {
		copy(l.loadBuf, l.loadData)
		l.loadData = l.loadBuf
		l.loadAliased = false
	}
	if l.regAliased && l.regRow == row {
		l.ownReg()
	}
}

// storePage commits a full page of data to the array in a pooled buffer
// and marks the row programmed.
func (l *LUN) storePage(row uint32, data []byte) {
	buf := l.pool.Get()
	copy(buf.Bytes(), data)
	if old, ok := l.pages[row]; ok {
		l.unalias(row)
		old.Release()
	}
	l.pages[row] = buf
	l.programmed[row] = true
}

// dropPage releases row's pooled buffer, if any, and forgets it.
func (l *LUN) dropPage(row uint32) {
	if buf, ok := l.pages[row]; ok {
		l.unalias(row)
		buf.Release()
		delete(l.pages, row)
	}
}

// DataIn accepts a data burst from the controller (Data Writer µFSM) into
// the page register at the current column, or feature data for SET
// FEATURES.
func (l *LUN) DataIn(now sim.Time, data []byte) error {
	l.settle(now)
	if !l.Ready(now) {
		return l.protoErr("data in while busy")
	}
	if l.dec == decSetFeatData {
		if len(data) != 4 {
			return l.protoErr("SET FEATURES needs 4 data bytes, got %d", len(data))
		}
		var v [4]byte
		copy(v[:], data)
		l.features[onfi.FeatureAddr(l.addrBytes[0])] = v
		l.dec = decIdle
		return nil
	}
	if l.dec != decProgramData {
		return l.protoErr("data in outside a program sequence")
	}
	if l.column+len(data) > len(l.pageReg) {
		return l.protoErr("data in overruns page register (col %d + %d bytes)", l.column, len(data))
	}
	l.ownReg()
	copy(l.pageReg[l.column:], data)
	l.column += len(data)
	return nil
}

// DataOut streams n bytes out of the LUN into a fresh slice. Hot paths
// use DataOutInto; this wrapper serves callers that want an owned copy.
func (l *LUN) DataOut(now sim.Time, n int) ([]byte, error) {
	out := make([]byte, n)
	if err := l.DataOutInto(now, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DataOutInto streams len(dst) bytes out of the LUN (Data Reader µFSM)
// into dst: status, page/cache register contents from the current
// column, ID bytes, or feature data, depending on the preceding command.
// Every byte of dst is overwritten on success.
func (l *LUN) DataOutInto(now sim.Time, dst []byte) error {
	l.settle(now)
	// A bare 00h latch after READ STATUS is the ONFI READ MODE command:
	// it re-selects the interrupted data output. The decoder cannot
	// distinguish it from READ.1 until it sees what follows; data output
	// with zero collected address cycles resolves it.
	if l.dec == decReadAddr && len(l.addrBytes) == 0 && l.out == outStatus && l.lastDataOut != outNone {
		l.out = l.lastDataOut
		l.dec = decIdle
	}
	switch l.out {
	case outStatus:
		s := l.Status(now)
		for i := range dst {
			dst[i] = s
		}
		return nil
	case outPage:
		if !l.Ready(now) {
			return l.protoErr("page data out while busy")
		}
		if l.loadPending {
			return l.protoErr("page data out before load settled")
		}
		if err := l.copyRegisterInto(dst, l.reg); err != nil {
			return err
		}
		l.applyPhaseCorruption(dst)
		return nil
	case outCache:
		// Cache output is legal while the array is busy; RDY gates it.
		if now < l.busyUntil {
			return l.protoErr("cache data out while busy")
		}
		if err := l.copyRegisterInto(dst, l.cacheReg); err != nil {
			return err
		}
		l.applyPhaseCorruption(dst)
		return nil
	case outParamPage:
		if !l.Ready(now) {
			return l.protoErr("parameter page out while busy")
		}
		for i := range dst {
			idx := l.column + i
			// The package repeats parameter-page copies back to back.
			dst[i] = l.paramPage[idx%len(l.paramPage)]
		}
		l.column += len(dst)
		l.applyPhaseCorruption(dst)
		return nil
	case outID:
		for i := range dst {
			idx := l.idOffset + l.column + i
			if idx < len(l.params.IDBytes) {
				dst[i] = l.params.IDBytes[idx]
			} else {
				dst[i] = 0
			}
		}
		l.column += len(dst)
		return nil
	case outFeature:
		return l.copyRegisterInto(dst, l.cacheReg)
	default:
		return l.protoErr("data out with no output source selected")
	}
}

// applyPhaseCorruption garbles a data burst when the DQS phase trim is
// too far from this instance's optimum: the strobe samples DQ at the
// wrong instant and bits smear. Deterministic so calibration converges.
func (l *LUN) applyPhaseCorruption(out []byte) {
	cur := int(l.features[onfi.FeatOutputPhase][0])
	d := cur - l.phaseOptimal
	if d < 0 {
		d = -d
	}
	if d <= phaseTolerance {
		return
	}
	for i := range out {
		if i%2 == 0 {
			out[i] ^= 0xFF
		} else {
			out[i] ^= byte(d)
		}
	}
}

func (l *LUN) copyRegisterInto(dst, reg []byte) error {
	if l.column+len(dst) > len(reg) {
		return l.protoErr("data out overruns register (col %d + %d bytes)", l.column, len(dst))
	}
	copy(dst, reg[l.column:])
	l.column += len(dst)
	return nil
}
