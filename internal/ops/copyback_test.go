package ops_test

import (
	"bytes"
	"testing"

	"repro/internal/core"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/wave"
)

func TestCopybackPage(t *testing.T) {
	r := newRig(t, 1, smallParams())
	lun := r.ch.Chip(0)
	want := bytes.Repeat([]byte{0xD4}, 256)
	src := onfi.RowAddr{Block: 1, Page: 2}
	dst := onfi.RowAddr{Block: 4, Page: 0}
	if err := lun.SeedPage(src, want); err != nil {
		t.Fatal(err)
	}

	err := r.run(t, core.OpRequest{Func: ops.CopybackPage(src, dst), Chip: 0})
	if err != nil {
		t.Fatal(err)
	}
	got, err := lun.PeekPage(dst)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got[:256], want) {
		t.Error("copyback destination mismatch")
	}
	// Source unchanged.
	srcData, _ := lun.PeekPage(src)
	if !bytes.Equal(srcData[:256], want) {
		t.Error("copyback clobbered the source")
	}

	// The key property: no page-sized data crossed the channel — only
	// latch bursts and 1-byte status reads.
	for _, s := range r.ch.Recorder().Segments() {
		if (s.Kind == wave.KindDataOut || s.Kind == wave.KindDataIn) && s.Bytes > 1 {
			t.Errorf("copyback moved %d bytes over the channel", s.Bytes)
		}
	}
	// And the waveform is still ONFI-legal.
	chk := wave.NewChecker(r.ch.Timing(), r.ch.Config())
	if vs := chk.Check(r.ch.Recorder().Segments()); len(vs) != 0 {
		t.Errorf("violations: %v", vs)
	}
}

func TestCopybackToProgrammedPageFails(t *testing.T) {
	r := newRig(t, 1, smallParams())
	lun := r.ch.Chip(0)
	src := onfi.RowAddr{Block: 1, Page: 0}
	dst := onfi.RowAddr{Block: 2, Page: 0}
	lun.SeedPage(src, []byte{1})
	lun.SeedPage(dst, []byte{2}) // already programmed: overwrite must FAIL
	err := r.run(t, core.OpRequest{Func: ops.CopybackPage(src, dst), Chip: 0})
	if err == nil {
		t.Error("copyback overwrite accepted")
	}
}

func TestCopybackValidation(t *testing.T) {
	r := newRig(t, 1, smallParams())
	bad := onfi.RowAddr{Block: 999}
	if err := r.run(t, core.OpRequest{Func: ops.CopybackPage(bad, onfi.RowAddr{}), Chip: 0}); err == nil {
		t.Error("bad source accepted")
	}
	if err := r.run(t, core.OpRequest{Func: ops.CopybackPage(onfi.RowAddr{}, bad), Chip: 0}); err == nil {
		t.Error("bad destination accepted")
	}
}
