package obs

// Buffer is a Tracer that records the event stream in memory, in
// emission order. It is the building block of the parallel experiment
// runner's trace discipline: every concurrently-running rig traces into
// its own Buffer (so no Tracer implementation ever sees concurrent
// calls), and when the sweep finishes the buffers are replayed into the
// shared sink in deterministic configuration order. The merged stream is
// therefore byte-identical to a serial run, regardless of worker count
// or completion order.
//
// A Buffer is not safe for concurrent use by multiple goroutines — one
// rig, one Buffer.
type Buffer struct {
	events []Event
}

// Event implements Tracer.
func (b *Buffer) Event(e Event) { b.events = append(b.events, e) }

// Len reports the number of buffered events.
func (b *Buffer) Len() int { return len(b.events) }

// Events returns the buffered stream in emission order. The slice is
// the buffer's backing store; callers must not append to it.
func (b *Buffer) Events() []Event { return b.events }

// ReplayInto forwards the buffered stream to t in emission order. A nil
// t is a no-op, preserving the "nil means off" convention.
func (b *Buffer) ReplayInto(t Tracer) {
	if t == nil {
		return
	}
	for _, e := range b.events {
		t.Event(e)
	}
}

// Reset drops the buffered events, retaining capacity for reuse.
func (b *Buffer) Reset() { b.events = b.events[:0] }
