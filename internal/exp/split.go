package exp

import (
	"fmt"
	"sort"

	"repro/internal/analyze"
	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// SplitRow is one configuration's software/hardware time decomposition —
// the paper's Table II view, derived entirely from the obs event stream
// rather than ad-hoc counters.
type SplitRow struct {
	Controller ssd.ControllerKind
	CPUMHz     int
	Reads      int
	// Software is the firmware time charged to the CPU model; Hardware
	// is the channel's bus occupancy. Both are event-stream sums that
	// reproduce the cpumodel/bus counters exactly.
	Software sim.Duration
	Hardware sim.Duration
	// Elapsed is the virtual span of the run.
	Elapsed sim.Duration
	// PollResubmits counts re-issued status transactions (§VI-C), the
	// dominant software overhead of the coroutine environment.
	PollResubmits uint64
	// MeanQueueDepth is the average hardware-visible transaction queue
	// depth, sampled at every enqueue and pop.
	MeanQueueDepth float64
	// Charges breaks Software down per firmware action.
	Charges map[string]obs.ChargeStats
	// Components is the per-operation latency breakdown (queue wait,
	// channel, cell, firmware) with percentile summaries, from the
	// logic analyzer's span correlation over the same event stream.
	Components analyze.Components
	// Occupancy is the channel's reconstructed timeline statistics:
	// busy/idle split, idle-gap fragmentation, die overlap.
	Occupancy analyze.Occupancy
}

// SoftwareShare is Software / (Software + Hardware).
func (r SplitRow) SoftwareShare() float64 {
	total := r.Software + r.Hardware
	if total <= 0 {
		return 0
	}
	return float64(r.Software) / float64(total)
}

// splitCPUs are the firmware clocks swept: the 150 MHz soft core where
// software time dominates, and the 1 GHz ARM case where it vanishes.
var splitCPUs = []int{150, 1000}

// TimeSplit runs a single-LUN sequential read stream against both BABOL
// software environments at each clock in splitCPUs, with the metrics
// roll-up enabled, and reports where the time went.
func TimeSplit(opt Options) ([]SplitRow, error) {
	opt = opt.withDefaults()
	reads := opt.Ops / 4
	if reads < 8 {
		reads = 8
	}
	type cfg struct {
		kind ssd.ControllerKind
		mhz  int
	}
	var cfgs []cfg
	for _, kind := range []ssd.ControllerKind{ssd.CtrlBabolRTOS, ssd.CtrlBabolCoro} {
		for _, mhz := range splitCPUs {
			cfgs = append(cfgs, cfg{kind, mhz})
		}
	}
	out := make([]SplitRow, len(cfgs))
	err := sweep(opt, len(cfgs), func(i int, tracer obs.Tracer) error {
		c := cfgs[i]
		// The analyzer needs the rig's raw stream regardless of whether
		// the sweep has an external tracer; capture it locally and
		// forward to the sweep's sink as well.
		var buf obs.Buffer
		rigTracer := obs.Tracer(&buf)
		if tracer != nil {
			rigTracer = obs.Multi{tracer, &buf}
		}
		rig, err := ssd.Build(ssd.BuildConfig{
			Params: shrink(nand.Hynix(), opt.Blocks), Ways: 1, RateMT: 200,
			Controller: c.kind, CPUMHz: c.mhz,
			Observe: true, Tracer: rigTracer,
			NoCoroPool: opt.NoCoroPool,
			Shards:     opt.Shards, HostHop: opt.HostHop,
			ShardTelemetry: opt.ShardTelemetry, TraceShardWindows: opt.TraceShardWindows,
			MapCacheBytes: opt.MapCacheBytes,
		})
		if err != nil {
			return err
		}
		defer rig.Close()
		if err := rig.SSD.Preload(reads); err != nil {
			return err
		}
		res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
			Pattern: hic.Sequential, Kind: hic.KindRead,
			NumOps: reads, QueueDepth: 2, LogicalPages: reads,
		})
		if err != nil {
			return err
		}
		rig.Run()
		if res.Completed != reads || res.Failed != 0 {
			return fmt.Errorf("timesplit %v@%d: %d/%d completed, %d failed",
				c.kind, c.mhz, res.Completed, reads, res.Failed)
		}
		a := analyze.Analyze(buf.Events())
		s := a.Metrics
		// The analyzer's replayed registry must reproduce the rig's live
		// one exactly — same events, same aggregation. A mismatch means
		// the offline path (babolbench analyze) would disagree with the
		// in-process numbers, so fail loudly rather than report either.
		if live := rig.Metrics.Snapshot(); s.SoftwareTime != live.SoftwareTime ||
			s.HardwareTime != live.HardwareTime || s.Events != live.Events {
			return fmt.Errorf("timesplit %v@%d: analyzer replay diverged from live metrics (sw %v vs %v, hw %v vs %v, events %d vs %d)",
				c.kind, c.mhz, s.SoftwareTime, live.SoftwareTime,
				s.HardwareTime, live.HardwareTime, s.Events, live.Events)
		}
		row := SplitRow{
			Controller: c.kind, CPUMHz: c.mhz, Reads: reads,
			Software: s.SoftwareTime, Hardware: s.HardwareTime,
			Elapsed:        s.Span(),
			PollResubmits:  s.PollResubmits,
			MeanQueueDepth: s.QueueDepth.Mean(),
			Charges:        s.Charges,
			Components:     a.Components,
		}
		if len(a.Runs) == 1 {
			if tl := a.Runs[0].Timelines[0]; tl != nil {
				row.Occupancy = tl.Occupancy()
			}
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// TimeSplitCSV renders the decomposition as machine-readable CSV,
// including the analyzer's per-op latency percentiles and channel
// occupancy split.
func TimeSplitCSV(rows []SplitRow) string {
	out := "controller,cpu_mhz,reads,software_us,hardware_us,software_share,poll_resubmits,mean_qdepth," +
		"lat_p50_us,lat_p99_us,queue_wait_p50_us,cell_p50_us,firmware_p50_us,busy_us,idle_us,utilization\n"
	for _, r := range rows {
		c, o := r.Components, r.Occupancy
		out += fmt.Sprintf("%s,%d,%d,%.2f,%.2f,%.3f,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.4f\n",
			r.Controller, r.CPUMHz, r.Reads,
			r.Software.Micros(), r.Hardware.Micros(), r.SoftwareShare(),
			r.PollResubmits, r.MeanQueueDepth,
			c.Latency.P50.Micros(), c.Latency.P99.Micros(),
			c.QueueWait.P50.Micros(), c.CellTime.P50.Micros(), c.Firmware.P50.Micros(),
			o.Busy.Micros(), o.Idle.Micros(), o.Utilization())
	}
	return out
}

// RenderTimeSplit formats the software/hardware decomposition with the
// per-action charge breakdown.
func RenderTimeSplit(rows []SplitRow) string {
	var lines []string
	for _, r := range rows {
		lines = append(lines, fmt.Sprintf("%-6s @%-5d sw=%-10s hw=%-10s sw%%=%-6.1f polls=%-6d qdepth=%.2f",
			r.Controller, r.CPUMHz, us(r.Software), us(r.Hardware),
			100*r.SoftwareShare(), r.PollResubmits, r.MeanQueueDepth))
	}
	out := table("Time split: software (CPU) vs hardware (channel) time from the event stream", lines)
	out += "\nPer-op latency breakdown (p50/p99 from span correlation):\n"
	for _, r := range rows {
		c := r.Components
		out += fmt.Sprintf("%-6s @%-5d lat=%s/%s queue=%s/%s chan=%s/%s cell=%s/%s fw=%s/%s util=%.1f%%\n",
			r.Controller, r.CPUMHz,
			us(c.Latency.P50), us(c.Latency.P99),
			us(c.QueueWait.P50), us(c.QueueWait.P99),
			us(c.ChannelTime.P50), us(c.ChannelTime.P99),
			us(c.CellTime.P50), us(c.CellTime.P99),
			us(c.Firmware.P50), us(c.Firmware.P99),
			100*r.Occupancy.Utilization())
	}
	for _, r := range rows {
		labels := make([]string, 0, len(r.Charges))
		for l := range r.Charges {
			labels = append(labels, l)
		}
		sort.Strings(labels)
		out += fmt.Sprintf("\n%s @%d MHz charge breakdown:\n", r.Controller, r.CPUMHz)
		for _, l := range labels {
			c := r.Charges[l]
			out += fmt.Sprintf("  %-14s n=%-7d cycles=%-10d time=%s\n", l, c.Count, c.Cycles, us(c.Time))
		}
	}
	return out
}
