package loc

import (
	"fmt"
	"os"
	"path/filepath"
)

// FindRepoRoot walks up from the working directory to the module root
// (the directory holding go.mod), so experiments can locate the sources
// they count regardless of which package directory invoked them.
func FindRepoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("loc: no go.mod above %s", dir)
		}
		dir = parent
	}
}
