package ssd

// Garbage collection: when a chip dips below its free-block watermark,
// the SSD picks the emptiest sealed block (greedy, via the FTL), copies
// its live pages to fresh locations through the controller, and erases
// the victim. GC runs one block at a time per chip and shares the normal
// datapath, so it naturally competes with host traffic for the channel.

func (s *SSD) maybeGC(chip int) {
	if s.gcRunning[chip] || !s.ftl.NeedsGC(chip) {
		return
	}
	block, live, ok := s.ftl.GCCandidate(chip)
	if !ok {
		return
	}
	if len(live) == s.ftl.Geometry().PagesPerBlk {
		// Even the emptiest sealed block is fully live: collecting it
		// would burn one block to free one block. Wait for host
		// overwrites to create garbage instead of livelocking.
		return
	}
	s.gcRunning[chip] = true
	s.stats.GCCycles++
	s.gcMove(chip, block, live, 0)
}

// gcMove relocates live[idx:] one page at a time, then erases the victim.
func (s *SSD) gcMove(chip, victim int, live []int, idx int) {
	if idx >= len(live) {
		done := func(err error) {
			if err == nil {
				s.ftl.OnErased(chip, victim)
			} else {
				// The block failed to erase: retire it, or GC would
				// re-pick the same victim forever.
				s.ftl.RetireBlock(chip, victim)
			}
			// Close the urgent-read window and hand leftovers (reads
			// that arrived after the erase's last check) to the normal
			// path.
			if q := s.eraseQueues[chip]; q != nil {
				delete(s.eraseQueues, chip)
				for {
					ur, ok := q.next()
					if !ok {
						break
					}
					s.backend.ReadPage(chip, ur.Addr.Row, ur.DramAddr, ur.N, ur.Done)
				}
			}
			s.gcRunning[chip] = false
			// Retry writes parked on out-of-space, then keep collecting
			// if still under the watermark.
			s.drainStalled()
			s.maybeGC(chip)
		}
		if s.suspendReads {
			if ie, ok := s.backend.(InterruptibleEraser); ok {
				q := &urgentQueue{}
				s.eraseQueues[chip] = q
				ie.EraseBlockInterruptible(chip, victim, q.next, done)
				return
			}
		}
		s.backend.EraseBlock(chip, victim, done)
		return
	}
	lpn := live[idx]
	if s.inflightPrograms[lpn] > 0 {
		// The page's program has not landed in the array yet (the FTL
		// maps at allocation time, and the transaction scheduler may run
		// our relocation's read issue ahead of the program's data
		// transfer). Relocating now would copy erased cells; park this
		// step until the program lands.
		s.awaitProgram(lpn, func() { s.gcMove(chip, victim, live, idx) })
		return
	}
	src, ok := s.ftl.Lookup(lpn)
	if !ok || src.Row.Block != victim || src.Chip != chip {
		// The host overwrote this page since the candidate snapshot;
		// nothing to move.
		s.gcMove(chip, victim, live, idx+1)
		return
	}
	// Copyback path: relocate inside the LUN with no channel data
	// transfer when the controller supports it.
	if s.useCopyback {
		if cb, ok := s.backend.(Copybacker); ok {
			dst, err := s.ftl.RelocateForGCOn(chip, lpn)
			if err != nil {
				s.gcRunning[chip] = false
				return
			}
			s.stats.GCCopybacks++
			s.programStarted(lpn)
			cb.CopybackPage(chip, src.Row, dst.Row, func(err error) {
				if err != nil {
					s.ftl.Invalidate(lpn)
				}
				s.programLanded(lpn)
				s.gcMove(chip, victim, live, idx+1)
			})
			return
		}
	}
	s.acquireSlot(func(addr int) {
		n := s.pageBytes + s.parityBytes
		s.backend.ReadPage(src.Chip, src.Row, addr, n, func(err error) {
			if err == nil && s.withECC {
				// Scrub in transit: correct accumulated bit errors and
				// regenerate parity, so relocations do not compound raw
				// errors generation over generation.
				err = s.scrubECC(addr)
			}
			if err != nil {
				// Unreadable victim page: drop it rather than wedge GC.
				s.ftl.Invalidate(lpn)
				s.releaseSlot(addr)
				s.gcMove(chip, victim, live, idx+1)
				return
			}
			dst, err := s.ftl.RelocateForGC(lpn)
			if err != nil {
				s.releaseSlot(addr)
				s.gcRunning[chip] = false
				return
			}
			s.programStarted(lpn)
			s.backend.ProgramPage(dst.Chip, dst.Row, addr, n, func(err error) {
				s.releaseSlot(addr)
				if err != nil {
					s.ftl.Invalidate(lpn)
				}
				s.programLanded(lpn)
				s.gcMove(chip, victim, live, idx+1)
			})
		})
	})
}
