package analyze

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Per-tenant QoS report: the host frontend's obs.KindHostCmd events
// carry each command's tenant, queue, kind, and enqueue→completion
// latency, so a trace from the workload engine (or a trace replay)
// reconstructs per-tenant latency percentiles, throughput, and a
// fairness summary — the Copycat-style per-tenant view the aggregate
// bandwidth figures hide. Traces without host-cmd events produce no
// report, keeping pre-frontend goldens byte-identical.

// TenantRow is one tenant's aggregate over a run.
type TenantRow struct {
	Name      string
	Queue     int
	Completed int
	Failed    int
	Reads     int
	Writes    int
	Trims     int
	// Latency summarizes successful commands' enqueue→completion
	// latency (failures excluded, per the hic.Result contract).
	Latency LatencySummary
	// IOPS is completions per second of the report span.
	IOPS float64
}

// TenantReport is the per-run tenant QoS view.
type TenantReport struct {
	// Rows is sorted by tenant name for stable rendering.
	Rows []TenantRow
	// Span covers first..last host-cmd event of the run.
	Span sim.Duration
	// Fairness is Jain's index over per-tenant completion counts:
	// (Σx)²/(n·Σx²) — 1.0 when every tenant got equal service, 1/n when
	// one tenant got everything.
	Fairness float64
}

// TenantReportFromEvents builds the report from a raw event stream, or
// returns nil when the stream carries no host-cmd events.
func TenantReportFromEvents(events []obs.Event) *TenantReport {
	type acc struct {
		row  TenantRow
		lats []sim.Duration
	}
	var first, last sim.Time
	seen := false
	accs := map[string]*acc{}
	for _, e := range events {
		if e.Kind != obs.KindHostCmd {
			continue
		}
		if !seen || e.Time < first {
			first = e.Time
		}
		if !seen || e.Time > last {
			last = e.Time
		}
		seen = true
		a := accs[e.Label]
		if a == nil {
			a = &acc{row: TenantRow{Name: e.Label}}
			accs[e.Label] = a
		}
		a.row.Queue = e.Depth
		if e.Err {
			a.row.Failed++
		} else {
			a.row.Completed++
			a.lats = append(a.lats, e.Dur)
		}
		switch e.Cycles {
		case 0:
			a.row.Reads++
		case 1:
			a.row.Writes++
		case 2:
			a.row.Trims++
		}
	}
	if !seen {
		return nil
	}
	rep := &TenantReport{Span: last.Sub(first)}
	names := make([]string, 0, len(accs))
	for n := range accs {
		names = append(names, n)
	}
	sort.Strings(names)
	var sum, sumSq float64
	for _, n := range names {
		a := accs[n]
		a.row.Latency = Summarize(a.lats)
		if secs := rep.Span.Seconds(); secs > 0 {
			a.row.IOPS = float64(a.row.Completed) / secs
		}
		sum += float64(a.row.Completed)
		sumSq += float64(a.row.Completed) * float64(a.row.Completed)
		rep.Rows = append(rep.Rows, a.row)
	}
	if sumSq > 0 {
		rep.Fairness = sum * sum / (float64(len(rep.Rows)) * sumSq)
	}
	return rep
}

// renderTenantReport formats one run's tenant QoS view.
func renderTenantReport(runIndex int, t *TenantReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "\ntenant QoS (run %d): %d tenant(s) span=%s fairness=%.3f\n",
		runIndex, len(t.Rows), us(t.Span), t.Fairness)
	for _, row := range t.Rows {
		name := row.Name
		if name == "" {
			name = "(anonymous)"
		}
		fmt.Fprintf(&b, "  %-14s q%-2d done=%-6d failed=%-4d r/w/t=%d/%d/%d iops=%.0f\n",
			name, row.Queue, row.Completed, row.Failed,
			row.Reads, row.Writes, row.Trims, row.IOPS)
		b.WriteString(fmtSummary("  latency", row.Latency) + "\n")
	}
	return b.String()
}

// TenantCSV renders every run's tenant report as a CSV section (empty
// string when no run has one).
func TenantCSV(runs []Run) string {
	any := false
	for i := range runs {
		if runs[i].Tenants != nil {
			any = true
			break
		}
	}
	if !any {
		return ""
	}
	var b strings.Builder
	b.WriteString("run,tenant,queue,completed,failed,reads,writes,trims,iops," +
		"mean_ps,p50_ps,p90_ps,p99_ps,max_ps,fairness\n")
	for i := range runs {
		t := runs[i].Tenants
		if t == nil {
			continue
		}
		for _, row := range t.Rows {
			l := row.Latency
			fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%d,%d,%d,%.1f,%d,%d,%d,%d,%d,%.4f\n",
				runs[i].Index, row.Name, row.Queue, row.Completed, row.Failed,
				row.Reads, row.Writes, row.Trims, row.IOPS,
				l.Mean, l.P50, l.P90, l.P99, l.Max, t.Fairness)
		}
	}
	return b.String()
}
