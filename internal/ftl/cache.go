package ftl

import (
	"sync/atomic"

	"repro/internal/onfi"
)

// The translation-page cache models FMMU-style demand paging of the
// L2P map: the map is stored on flash as fixed-size translation pages
// (groups of groupEntries entries, one NAND page each), and only a
// DRAM budget's worth of them is resident at a time. A translation
// that misses must first read the map page from NAND — the SSD layer
// (internal/ssd) charges that read through the ordinary ops path, so
// the cost lands in latency figures, not just counters.
//
// The budget is split evenly across map shards, floored at one slot
// per shard so every shard can always make progress; eviction is the
// clock (second-chance) algorithm over the shard's slots. Reference
// bits are atomics because the hit path sets them under the shard's
// *read* lock — concurrent hits on the same slot are benign races on
// a one-way flag, not data corruption, but the race detector rightly
// wants the store annotated.
//
// Correctness never depends on residency: the backing map (shard.go)
// is always authoritative, and the cache only decides whether a
// translation costs a NAND read first. With MapCacheBytes == 0 the
// cache is disabled and every path short-circuits to the legacy
// always-resident behavior — no counters move, no events fire, and
// results are byte-identical to pre-cache builds.

// cacheSlot is one resident translation page.
type cacheSlot struct {
	mpn   int         // global map-page number
	ref   atomic.Bool // clock reference bit; set on every hit
	dirty bool        // mapping in this group changed since install
}

// initCache sizes the per-shard slot arrays from the byte budget.
// Caller runs during NewWithConfig, before any concurrency.
func (f *FTL) initCache(budget int64) {
	f.budgetBytes = budget
	if budget <= 0 {
		return
	}
	f.cacheEnabled = true
	slots := int(budget / int64(f.groupBytes))
	per := slots / len(f.shards)
	if per < 1 {
		per = 1
	}
	f.slotsPerShard = per
	for i := range f.shards {
		sh := &f.shards[i]
		n := per
		if g := f.groupCount(sh); n > g {
			n = g
		}
		sh.slots = make([]cacheSlot, n)
		sh.resident = make(map[int]int, n)
	}
}

// CacheEnabled reports whether translations are demand-paged under a
// DRAM budget.
func (f *FTL) CacheEnabled() bool { return f.cacheEnabled }

// GroupEntries reports the number of L2P entries per translation page.
func (f *FTL) GroupEntries() int { return f.groupEntries }

// MapPages reports the total number of translation pages covering the
// logical space.
func (f *FTL) MapPages() int {
	return (f.logical + f.groupEntries - 1) / f.groupEntries
}

// mapPage returns the global map-page number owning an LPN.
func (f *FTL) mapPage(lpn int) int { return lpn / f.groupEntries }

// mpnShard returns the shard owning a map page.
func (f *FTL) mpnShard(mpn int) *mapShard {
	return f.shard(mpn * f.groupEntries)
}

// CacheAcquire checks whether lpn's translation page is resident.
// On a hit it marks the slot referenced and returns hit=true; the
// caller may translate immediately. On a miss the caller must model a
// NAND read of map page mpn and then call CacheInstall(mpn) before
// retrying the translation. With the cache disabled it always reports
// a hit (and counts nothing). Allocation-free on the hit path.
func (f *FTL) CacheAcquire(lpn int) (mpn int, hit bool) {
	if !f.cacheEnabled {
		return 0, true
	}
	if lpn < 0 || lpn >= f.logical {
		return 0, true
	}
	mpn = f.mapPage(lpn)
	sh := f.shard(lpn)
	sh.mu.RLock()
	idx, ok := sh.resident[mpn]
	if ok {
		sh.slots[idx].ref.Store(true)
	}
	sh.mu.RUnlock()
	if ok {
		f.n.mapHits.Add(1)
		return mpn, true
	}
	f.n.mapMisses.Add(1)
	return mpn, false
}

// CacheInstall makes map page mpn resident after its NAND read
// completed, evicting by clock if the shard's slots are full. Reports
// whether a victim was evicted and whether that victim was dirty (a
// dirty victim models a map-page write-back; the SSD layer counts it
// as a flush). Installing an already-resident page is a no-op —
// concurrent misses on the same page coalesce upstream, but a stale
// second install must not evict anything.
func (f *FTL) CacheInstall(mpn int) (evicted, flushedDirty bool) {
	if !f.cacheEnabled {
		return false, false
	}
	sh := f.mpnShard(mpn)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.resident[mpn]; ok {
		return false, false
	}
	var idx int
	if sh.used < len(sh.slots) {
		idx = sh.used
		sh.used++
	} else {
		// Clock sweep: clear reference bits until one stays clear.
		// Terminates within two laps because cleared bits stay
		// cleared under the exclusive lock.
		for {
			s := &sh.slots[sh.hand]
			if s.ref.Load() {
				s.ref.Store(false)
				sh.hand = (sh.hand + 1) % len(sh.slots)
				continue
			}
			idx = sh.hand
			sh.hand = (sh.hand + 1) % len(sh.slots)
			break
		}
		victim := &sh.slots[idx]
		delete(sh.resident, victim.mpn)
		evicted = true
		flushedDirty = victim.dirty
		f.n.mapEvictions.Add(1)
		if flushedDirty {
			f.n.mapFlushes.Add(1)
		}
	}
	s := &sh.slots[idx]
	s.mpn = mpn
	s.ref.Store(true)
	s.dirty = false
	sh.resident[mpn] = idx
	return evicted, flushedDirty
}

// markDirtyLocked records that a mapping inside lpn's translation page
// changed. If the page is resident its slot goes dirty (the eventual
// eviction becomes a write-back). If it is not resident the change is
// counted as a bypass: paths that mutate the map without translating
// through the cache first (preload seeding, GC relocation — background
// machinery with its own metadata journaling in real firmware) modify
// the authoritative backing map directly. Caller holds sh.mu
// exclusively.
func (f *FTL) markDirtyLocked(sh *mapShard, lpn int) {
	if !f.cacheEnabled {
		return
	}
	if idx, ok := sh.resident[f.mapPage(lpn)]; ok {
		sh.slots[idx].dirty = true
	} else {
		f.n.mapBypasses.Add(1)
	}
}

// MapPageLocation models where a translation page lives on flash so a
// miss can be charged as a real NAND read. Map pages are striped
// chip-first across the channel, then across blocks and pages — a
// deterministic address transform, not a second allocator: the timing
// model needs a plausible target LUN/row for channel and die
// contention, while the authoritative map itself stays in the backing
// tables (correctness never depends on what this address holds).
func (f *FTL) MapPageLocation(mpn int) Location {
	chip := mpn % f.chips
	rest := mpn / f.chips
	block := rest % f.geo.BlocksPerLUN
	page := (rest / f.geo.BlocksPerLUN) % f.geo.PagesPerBlk
	return Location{Chip: chip, Row: onfi.RowAddr{Block: block, Page: page}}
}

// CacheStats is a point-in-time snapshot of the translation-cache
// counters, safe from any goroutine.
type CacheStats struct {
	Hits      uint64 // translations served from resident map pages
	Misses    uint64 // translations that charged a NAND map-page read
	Evictions uint64 // resident pages displaced by the clock
	Flushes   uint64 // evicted pages that were dirty (modeled write-back)
	Bypasses  uint64 // map mutations on non-resident pages (preload, GC)
}

// HitRate reports hits / (hits + misses), or 0 before any traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// CacheStats snapshots the translation-cache counters.
func (f *FTL) CacheStats() CacheStats {
	return CacheStats{
		Hits:      f.n.mapHits.Load(),
		Misses:    f.n.mapMisses.Load(),
		Evictions: f.n.mapEvictions.Load(),
		Flushes:   f.n.mapFlushes.Load(),
		Bypasses:  f.n.mapBypasses.Load(),
	}
}

// CacheInfo describes the cache configuration and current residency.
type CacheInfo struct {
	Enabled       bool
	BudgetBytes   int64
	GroupEntries  int // L2P entries per translation page
	GroupBytes    int // modeled DRAM bytes per translation page
	SlotsPerShard int
	MapPages      int // translation pages covering the logical space
	Resident      int // currently resident translation pages
}

// CacheInfo reports the cache configuration and a residency gauge.
func (f *FTL) CacheInfo() CacheInfo {
	info := CacheInfo{
		Enabled:       f.cacheEnabled,
		BudgetBytes:   f.budgetBytes,
		GroupEntries:  f.groupEntries,
		GroupBytes:    f.groupBytes,
		SlotsPerShard: f.slotsPerShard,
		MapPages:      f.MapPages(),
	}
	for i := range f.shards {
		sh := &f.shards[i]
		sh.mu.RLock()
		info.Resident += sh.used
		sh.mu.RUnlock()
	}
	return info
}
