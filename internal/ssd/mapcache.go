package ssd

import (
	"errors"

	"repro/internal/hic"
	"repro/internal/obs"
	"repro/internal/ops"
)

// Map-cache miss service: when the FTL's translation-page cache
// (ftl/cache.go) reports a miss, the host command parks here while the
// map page is read from NAND through the ordinary slot/backend path —
// the same DRAM staging, channel arbitration, and die timing a data
// read pays, so the translation cost appears in latency figures and
// traces rather than as a free counter bump. Concurrent misses on one
// map page coalesce behind a single flash read.
//
// Faults on map-page reads recover exactly like data reads: a
// RESET-recovered chip gets bounded reissues, a dead chip is taken
// offline. Either way the load completes and installs the page —
// the backing map (always materialized) stays authoritative, so a
// failed map read degrades timing fidelity, never correctness; an
// offline map chip models journal reconstruction from the surviving
// metadata copies.

// mapWaiter is one host command parked on a translation-page load. A
// plain struct, not a closure: parking must not allocate per-command
// state beyond the slice slot.
type mapWaiter struct {
	cmd   hic.Command
	write bool
	trim  bool
}

// mapMiss parks a host command on its map page's load, issuing the
// NAND read if this is the page's first outstanding miss.
func (s *SSD) mapMiss(mpn int, w mapWaiter) {
	loc := s.ftl.MapPageLocation(mpn)
	s.mapEvent("miss", loc.Chip)
	s.mapLoads[mpn] = append(s.mapLoads[mpn], w)
	if len(s.mapLoads[mpn]) == 1 {
		s.loadMapPage(mpn, 0)
	}
}

// loadMapPage charges the NAND read of map page mpn. The modeled
// location comes from the FTL's deterministic map layout; a chip that
// is already offline skips the flash read entirely (reconstruction
// from journaled metadata, no channel traffic to a dead die).
func (s *SSD) loadMapPage(mpn, attempt int) {
	loc := s.ftl.MapPageLocation(mpn)
	if s.offline[loc.Chip] {
		s.finishMapLoad(mpn)
		return
	}
	s.acquireSlot(func(addr int) {
		// Raw page read: map pages carry firmware metadata with its own
		// journaling/CRC story, not host data, so the host-data ECC
		// decode and the urgent-read erase bypass both stay out of the
		// path.
		s.backend.ReadPage(loc.Chip, loc.Row, addr, s.pageBytes, func(err error) {
			s.releaseSlot(addr)
			switch {
			case err == nil:
			case errors.Is(err, ops.ErrResetRecovered):
				if attempt+1 < maxReadRetries {
					s.stats.RecoveredOps++
					s.loadMapPage(mpn, attempt+1)
					return
				}
				s.offlineChip(loc.Chip)
			case errors.Is(err, ops.ErrChipDead):
				s.offlineChip(loc.Chip)
			}
			s.finishMapLoad(mpn)
		})
	})
}

// finishMapLoad installs the loaded page and releases every command
// parked on it, in arrival order.
func (s *SSD) finishMapLoad(mpn int) {
	evicted, flushed := s.ftl.CacheInstall(mpn)
	if evicted {
		s.mapEvent("evict", -1)
	}
	if flushed {
		s.mapEvent("flush", -1)
	}
	ws := s.mapLoads[mpn]
	delete(s.mapLoads, mpn)
	for _, w := range ws {
		switch {
		case w.write:
			s.writeMapped(w.cmd)
		case w.trim:
			s.trimMapped(w.cmd)
		default:
			s.readMapped(w.cmd)
		}
	}
}

// mapEvent emits a map-cache trace event. chip is the map page's
// modeled LUN for misses and -1 where no die is involved.
func (s *SSD) mapEvent(label string, chip int) {
	if s.tracer == nil {
		return
	}
	s.tracer.Event(obs.Event{Time: s.k.Now(), Kind: obs.KindMapCache, Chip: chip, Label: label})
}
