package ftl

import (
	"fmt"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/onfi"
)

// stormOps drives one deterministic write/overwrite/trim storm with
// interleaved GC, identical for every FTL it is replayed against.
func stormOps(t *testing.T, f *FTL, seed int64, ops int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	logical := f.LogicalPages()
	for i := 0; i < ops; i++ {
		lpn := rng.Intn(logical / 2) // half the space → overwrites → garbage
		switch rng.Intn(10) {
		case 0:
			f.Invalidate(lpn)
		default:
			if _, err := f.AllocateWrite(lpn); err != nil {
				// Out of space: run one GC pass on every chip that
				// needs it, then retry once.
				for c := 0; c < f.Chips(); c++ {
					gcOnce(t, f, c)
				}
				if _, err := f.AllocateWrite(lpn); err != nil {
					t.Fatalf("op %d: %v", i, err)
				}
			}
		}
		for c := 0; c < f.Chips(); c++ {
			if f.NeedsGC(c) {
				gcOnce(t, f, c)
			}
		}
	}
}

// gcOnce relocates one victim block's live pages and erases it.
func gcOnce(t *testing.T, f *FTL, chip int) {
	t.Helper()
	victim, live, ok := f.GCCandidate(chip)
	if !ok {
		return
	}
	for _, lpn := range live {
		if loc, lok := f.Lookup(lpn); !lok || loc.Chip != chip || loc.Row.Block != victim {
			continue // overwritten since the candidate scan
		}
		if _, err := f.RelocateForGCOn(chip, lpn); err != nil {
			t.Fatalf("relocate chip %d lpn %d: %v", chip, lpn, err)
		}
	}
	f.OnErased(chip, victim)
}

// fingerprint renders the full logical state for equality comparison.
func fingerprint(f *FTL) string {
	var b strings.Builder
	for lpn := 0; lpn < f.LogicalPages(); lpn++ {
		loc, ok := f.Lookup(lpn)
		if ok {
			fmt.Fprintf(&b, "%d:%d/%d/%d\n", lpn, loc.Chip, loc.Row.Block, loc.Row.Page)
		}
	}
	s := f.Stats()
	fmt.Fprintf(&b, "stats:%+v\n", s)
	return b.String()
}

// TestMapShardCountInvariance pins the tentpole's determinism contract
// at the FTL level: the shard count changes locking and memory
// granularity, never an allocation decision, so the same op storm must
// leave byte-identical logical state at every count.
func TestMapShardCountInvariance(t *testing.T) {
	build := func(shards int) *FTL {
		f, err := NewWithConfig(Config{
			Geometry: testGeo(), Chips: 4, ReservedBlocks: 2, MapShards: shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	ref := build(1)
	stormOps(t, ref, 42, 400)
	want := fingerprint(ref)
	if ref.Stats().GCErases == 0 {
		t.Fatal("storm never triggered GC; invariance check is vacuous")
	}
	for _, shards := range []int{0, 2, 8} {
		f := build(shards)
		stormOps(t, f, 42, 400)
		if got := fingerprint(f); got != want {
			t.Errorf("MapShards=%d diverged from MapShards=1", shards)
		}
		if err := f.CheckInvariants(); err != nil {
			t.Errorf("MapShards=%d: %v", shards, err)
		}
	}
}

// TestLazyMapMemoryFootprint is the memory regression gate for the
// lazy-init satellite: building a large-geometry FTL and touching a
// handful of LPNs must cost memory proportional to the touched
// translation groups, not the drive capacity. The eager layout this PR
// replaced allocated the full L2P table plus every block's reverse map
// up front (~100 MB at this shape); lazy init defers both to first
// write.
func TestLazyMapMemoryFootprint(t *testing.T) {
	geo := onfi.Geometry{
		Planes: 1, BlocksPerLUN: 4096, PagesPerBlk: 128,
		PageBytes: 4096, SpareBytes: 128,
	}
	const chips = 8
	logical := chips * (geo.BlocksPerLUN - 2) * geo.PagesPerBlk
	// What the pre-lazy layout paid before the first host op: 16-byte
	// L2P entries, the mapped bitmap, and an 8-byte reverse-map entry
	// per physical page.
	eager := uint64(logical)*17 + uint64(chips*geo.BlocksPerLUN*geo.PagesPerBlk)*8
	if eager < 50<<20 {
		t.Fatalf("geometry too small to make the point: eager cost only %d bytes", eager)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	f, err := New(geo, chips, 2)
	if err != nil {
		t.Fatal(err)
	}
	for lpn := 0; lpn < 100; lpn++ {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatal(err)
		}
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	delta := after.HeapAlloc - before.HeapAlloc
	if loc, ok := f.Lookup(50); !ok || loc.Chip < 0 {
		t.Fatal("written page did not map")
	}
	// Block metadata stays eager (small); the budget below allows it
	// plus the touched groups with room for allocator noise, while
	// sitting far under the eager table cost.
	if limit := eager / 8; delta > limit {
		t.Errorf("building + touching 100 LPNs cost %d bytes of heap; want < %d (eager layout cost %d)",
			delta, limit, eager)
	}
	runtime.KeepAlive(f)
}

// TestStatsConcurrentReaders pins the -http monitor path: Stats,
// CacheStats, MappedPages, LivePages, and Lookup must be safe (and
// race-clean) while another goroutine mutates the FTL mid-run. Run
// under -race; before the counters became atomics this was a data race
// on every field.
func TestStatsConcurrentReaders(t *testing.T) {
	f, err := NewWithConfig(Config{
		Geometry: testGeo(), Chips: 4, ReservedBlocks: 2, MapCacheBytes: 2048,
	})
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = f.Stats().WriteAmplification()
				_ = f.CacheStats().HitRate()
				_ = f.CacheInfo()
				_ = f.MappedPages()
				for c := 0; c < f.Chips(); c++ {
					_ = f.LivePages(c)
					_ = f.FreeBlocks(c)
					_ = f.WearSpread(c)
				}
				for lpn := 0; lpn < f.LogicalPages(); lpn += 7 {
					f.Lookup(lpn)
				}
			}
		}()
	}
	stormOps(t, f, 7, 600)
	close(stop)
	wg.Wait()
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoveryRacesGCRelocation exercises the shard-aware recovery
// paths concurrently: GC relocation grinding on one chip while
// RetireBlock and OfflineChip fire on others and readers scan
// everything. Run under -race. The per-shard/per-chip locking must keep
// the bidirectional map consistent through all of it — CheckInvariants
// is the arbiter.
func TestRecoveryRacesGCRelocation(t *testing.T) {
	f, err := NewWithConfig(Config{
		Geometry: testGeo(), Chips: 4, ReservedBlocks: 2, MapShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Seed every chip with garbage so GC has victims.
	stormOps(t, f, 11, 300)

	var wg sync.WaitGroup
	// GC worker: relocate-and-erase on chip 0 only.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			victim, live, ok := f.GCCandidate(0)
			if !ok {
				return
			}
			// Only this goroutine mutates chip 0's mappings, so once
			// every live LPN relocates the victim is empty and safe to
			// erase.
			for _, lpn := range live {
				if loc, lok := f.Lookup(lpn); !lok || loc.Chip != 0 || loc.Row.Block != victim {
					continue // trimmed since the candidate scan
				}
				if _, err := f.RelocateForGCOn(0, lpn); err != nil {
					return // GC stream exhausted; fine
				}
			}
			f.OnErased(0, victim)
		}
	}()
	// Recovery worker: retire blocks on chip 1, then offline chip 2 —
	// different chips and (mostly) different map shards than the GC
	// worker's traffic.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for b := 0; b < 4; b++ {
			f.RetireBlock(1, b)
		}
		f.OfflineChip(2)
		f.RetireBlock(1, 100) // out of range: must be a safe no-op
		f.OfflineChip(-1)
	}()
	// Reader worker: full scans while both mutators run.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			for lpn := 0; lpn < f.LogicalPages(); lpn++ {
				f.Lookup(lpn)
			}
			_ = f.Stats()
		}
	}()
	wg.Wait()

	if !f.ChipOffline(2) {
		t.Error("chip 2 should be offline")
	}
	if got := f.Stats().BadBlocks; got != 4 {
		t.Errorf("BadBlocks = %d, want 4", got)
	}
	if f.NeedsGC(2) {
		t.Error("offline chip must never report NeedsGC")
	}
	if _, _, ok := f.GCCandidate(2); ok {
		t.Error("offline chip must never offer GC candidates")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckInvariantsCatchesShardLiveSkew pins the extended invariant:
// per-shard live accounting must sum to the per-chip totals, and a
// corrupted shard counter must be reported, not silently tolerated.
func TestCheckInvariantsCatchesShardLiveSkew(t *testing.T) {
	f, err := NewWithConfig(Config{
		Geometry: testGeo(), Chips: 2, ReservedBlocks: 2, MapShards: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for lpn := 0; lpn < 16; lpn++ {
		if _, err := f.AllocateWrite(lpn); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatalf("clean state flagged: %v", err)
	}
	f.shards[0].live++ // simulate a lost decrement
	err = f.CheckInvariants()
	if err == nil {
		t.Fatal("skewed shard live count not detected")
	}
	if !strings.Contains(err.Error(), "shard") {
		t.Errorf("error %q does not name the shard accounting", err)
	}
}

// TestShardLayoutRoundsToGroups pins the sizing rule: shard boundaries
// are whole translation pages, the shard count caps at the group count,
// and every LPN lands in exactly one shard.
func TestShardLayoutRoundsToGroups(t *testing.T) {
	f, err := NewWithConfig(Config{
		Geometry: testGeo(), Chips: 4, ReservedBlocks: 2, MapShards: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	// testGeo: 512B pages → 64 entries per translation page; 4 chips ×
	// 6 exported blocks × 4 pages = 96 LPNs → 2 groups. 64 requested
	// shards must collapse to 2.
	if got := f.MapShards(); got != 2 {
		t.Fatalf("MapShards = %d, want 2 (capped at group count)", got)
	}
	if f.shardSize%f.groupEntries != 0 {
		t.Errorf("shard size %d not a multiple of group entries %d", f.shardSize, f.groupEntries)
	}
	covered := 0
	for i := range f.shards {
		covered += f.shards[i].size
	}
	if covered != f.LogicalPages() {
		t.Errorf("shards cover %d LPNs, want %d", covered, f.LogicalPages())
	}
}
