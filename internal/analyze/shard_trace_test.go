package analyze

import (
	"reflect"
	"testing"

	"repro/internal/hic"
	"repro/internal/nand"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/ssd"
)

// shardedTrace drives a multi-channel workload on a sharded rig and
// returns the merged trace plus the live metrics snapshot. The merge
// (ssd.Rig.Run) orders per-domain buffers by (time, domain), so events
// from different channels interleave at equal timestamps — the ordering
// this file's tests require the analyzer to tolerate.
func shardedTrace(t *testing.T) ([]obs.Event, *obs.Metrics) {
	t.Helper()
	p := nand.Hynix()
	p.Geometry.BlocksPerLUN = 16
	var buf obs.Buffer
	rig, err := ssd.Build(ssd.BuildConfig{
		Params: p, Channels: 2, Ways: 2, RateMT: 200,
		Controller: ssd.CtrlBabolRTOS, CPUMHz: 1000,
		Observe: true, Tracer: &buf,
		Shards: 3, HostHop: sim.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rig.Close()
	const reads = 48
	if err := rig.SSD.Preload(reads); err != nil {
		t.Fatal(err)
	}
	res, err := hic.Run(rig.Kernel, rig.SSD, hic.Workload{
		Pattern: hic.Sequential, Kind: hic.KindRead,
		NumOps: reads, QueueDepth: 8, LogicalPages: reads,
	})
	if err != nil {
		t.Fatal(err)
	}
	rig.Run()
	if res.Completed != reads || res.Failed != 0 {
		t.Fatalf("workload: %d/%d completed, %d failed", res.Completed, reads, res.Failed)
	}
	return buf.Events(), rig.Metrics
}

// TestAnalyzeShardMergedTrace is the regression test for shard-merged
// trace ordering: span correlation, the per-channel timelines, and the
// protocol checker must handle a trace whose channels interleave at
// equal timestamps without inventing run boundaries or violations.
func TestAnalyzeShardMergedTrace(t *testing.T) {
	events, metrics := shardedTrace(t)

	// The merge must actually produce the ordering under test: at least
	// one adjacent pair from different channels at the same timestamp.
	interleaved := false
	for i := 1; i < len(events); i++ {
		if events[i].Time == events[i-1].Time && events[i].Channel != events[i-1].Channel {
			interleaved = true
			break
		}
	}
	if !interleaved {
		t.Fatal("merged trace has no equal-timestamp cross-channel interleaving; test is vacuous")
	}

	want := metrics.Snapshot()
	a := Analyze(events)
	if len(a.Runs) != 1 {
		t.Fatalf("analyzer split one sharded rig into %d runs", len(a.Runs))
	}
	if got := uint64(len(a.Spans)); got != want.OpsFinished {
		t.Fatalf("spans = %d, metrics ops = %d", got, want.OpsFinished)
	}
	var chanSum sim.Duration
	for i := range a.Spans {
		s := &a.Spans[i]
		if !s.Complete {
			t.Fatalf("incomplete span %+v in a fully drained trace", s)
		}
		chanSum += s.ChannelTime
	}
	if chanSum != want.HardwareTime {
		t.Fatalf("span channel time %v != metrics hardware time %v", chanSum, want.HardwareTime)
	}

	// Both channels must reconstruct into timelines whose summed busy
	// time is the registry's hardware time, each rendering a Gantt.
	var busy sim.Duration
	lanes := 0
	for ch, tl := range a.Runs[0].Timelines {
		if tl == nil {
			continue
		}
		lanes++
		busy += tl.Occupancy().Busy
		if g := tl.Gantt(40); g == "" {
			t.Errorf("channel %d: empty gantt", ch)
		}
	}
	if lanes != 2 {
		t.Fatalf("reconstructed %d channel timelines, want 2", lanes)
	}
	if busy != want.HardwareTime {
		t.Fatalf("summed timeline busy %v != hardware time %v", busy, want.HardwareTime)
	}
	if len(a.Violations) != 0 {
		t.Fatalf("spurious protocol violations on a shard-merged trace: %v", a.Violations)
	}
}

// TestAnalyzeEqualTimestampOrderInsensitive pins the tolerance property
// directly: swapping any adjacent equal-timestamp events from different
// channels — the freedom a shard merge has — must not change the
// analysis. Per-channel order stays fixed; only cross-channel order at
// equal times is permuted.
func TestAnalyzeEqualTimestampOrderInsensitive(t *testing.T) {
	events, _ := shardedTrace(t)
	ref := Analyze(events)

	permuted := append([]obs.Event(nil), events...)
	swaps := 0
	for i := 1; i < len(permuted); i++ {
		if permuted[i].Time == permuted[i-1].Time && permuted[i].Channel != permuted[i-1].Channel {
			permuted[i-1], permuted[i] = permuted[i], permuted[i-1]
			swaps++
			i++ // don't swap the same pair back on the next step
		}
	}
	if swaps == 0 {
		t.Fatal("no equal-timestamp cross-channel pairs to permute; test is vacuous")
	}

	got := Analyze(permuted)
	if len(got.Runs) != len(ref.Runs) {
		t.Fatalf("permuted trace split into %d runs, reference %d", len(got.Runs), len(ref.Runs))
	}
	if !reflect.DeepEqual(got.Components, ref.Components) {
		t.Errorf("component summaries diverged under equal-timestamp reordering:\nref %+v\ngot %+v",
			ref.Components, got.Components)
	}
	if len(got.Violations) != len(ref.Violations) {
		t.Errorf("violations diverged under equal-timestamp reordering: ref %v, got %v",
			ref.Violations, got.Violations)
	}
	refOcc := ref.Runs[0].Timelines[0].Occupancy()
	gotOcc := got.Runs[0].Timelines[0].Occupancy()
	if !reflect.DeepEqual(refOcc, gotOcc) {
		t.Errorf("occupancy diverged under equal-timestamp reordering: ref %+v, got %+v", refOcc, gotOcc)
	}
}
