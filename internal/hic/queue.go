package hic

import (
	"fmt"

	"repro/internal/sim"
)

// NVMe-style multi-queue frontend: N submission queues feed one device
// through an arbiter, the way an NVMe controller services per-core
// submission queues. Each queue has its own in-flight window (its
// "queue depth" toward the device) and, under weighted round-robin, a
// burst weight; a global cap bounds total outstanding commands the way
// a controller's command-slot pool does.
//
// Everything runs on the simulation kernel's goroutine, so the frontend
// needs no locks and its dispatch order is a pure function of the
// enqueue order — deterministic at any queue count, and byte-identical
// under the sharded kernel because the host domain owns it entirely.
//
// Completion side: the frontend interposes on each command's Done with
// a pooled slot callback, so steady-state dispatch allocates nothing
// per command (the same discipline as Run's runSlot).

// Arbitration selects the dispatch policy among submission queues.
type Arbitration uint8

const (
	// RoundRobin grants one command per eligible queue in rotation —
	// NVMe's mandatory arbitration.
	RoundRobin Arbitration = iota
	// WeightedRoundRobin grants each queue a burst of up to Weight
	// consecutive commands when its turn comes — NVMe's optional WRR
	// with each queue its own strict class.
	WeightedRoundRobin
)

func (a Arbitration) String() string {
	if a == WeightedRoundRobin {
		return "wrr"
	}
	return "rr"
}

// QueueConfig describes one submission queue.
type QueueConfig struct {
	// Depth is the queue's in-flight window toward the device: at most
	// this many of its commands are outstanding at once. Must be ≥ 1.
	Depth int
	// Weight is the queue's WRR burst length — consecutive grants it
	// may take when it holds the turn. Non-positive defaults to 1;
	// ignored under RoundRobin.
	Weight int
}

// FrontendConfig assembles a Frontend.
type FrontendConfig struct {
	Queues      []QueueConfig
	Arbitration Arbitration
	// MaxInFlight caps device-wide outstanding commands across all
	// queues; 0 means the sum of queue depths (no extra cap).
	MaxInFlight int
	// Recorder, when non-nil, captures every enqueue for later JSONL
	// export and replay (see record.go).
	Recorder *Recorder
}

// QueueStats counts one queue's lifetime activity.
type QueueStats struct {
	Enqueued   uint64 // commands accepted into the queue
	Dispatched uint64 // commands handed to the device
	Completed  uint64 // commands whose completion returned
	Failed     uint64 // completions that carried an error
}

// Frontend is the multi-queue submission/completion engine.
type Frontend struct {
	k      *sim.Kernel
	sub    Submitter
	arb    Arbitration
	queues []fqueue

	maxInFlight int
	inFlight    int

	// cur is the queue holding the arbitration turn; burstLeft is the
	// remaining grants of that turn (always 0 under plain RR, so every
	// grant rotates).
	cur       int
	burstLeft int

	free    []*fqSlot
	pumping bool
	rec     *Recorder
}

// fqueue is one submission queue: a head-indexed ring of pending
// commands (the array is reused once drained, like urgentQueue in ssd)
// plus its in-flight window accounting.
type fqueue struct {
	cfg      QueueConfig
	pending  []Command
	head     int
	inFlight int
	stats    QueueStats
}

// fqSlot carries one in-flight command's original completion callback;
// its done closure is bound once and the slot recycles through the
// frontend's free list.
type fqSlot struct {
	f     *Frontend
	queue int
	orig  func(error)
	done  func(error)
}

// NewFrontend wires a frontend over sub on kernel k.
func NewFrontend(k *sim.Kernel, sub Submitter, cfg FrontendConfig) (*Frontend, error) {
	if k == nil || sub == nil {
		return nil, fmt.Errorf("hic: frontend needs a kernel and a submitter")
	}
	if len(cfg.Queues) == 0 {
		return nil, fmt.Errorf("hic: frontend needs at least one queue")
	}
	sum := 0
	for i, qc := range cfg.Queues {
		if qc.Depth <= 0 {
			return nil, fmt.Errorf("hic: queue %d: Depth must be positive, got %d", i, qc.Depth)
		}
		sum += qc.Depth
	}
	maxIF := cfg.MaxInFlight
	if maxIF <= 0 || maxIF > sum {
		maxIF = sum
	}
	f := &Frontend{
		k: k, sub: sub, arb: cfg.Arbitration,
		queues:      make([]fqueue, len(cfg.Queues)),
		maxInFlight: maxIF,
		rec:         cfg.Recorder,
		// The rotation scan starts at cur+1, so parking cur on the last
		// queue makes the very first grant land on queue 0.
		cur: len(cfg.Queues) - 1,
	}
	for i, qc := range cfg.Queues {
		if qc.Weight <= 0 {
			qc.Weight = 1
		}
		f.queues[i].cfg = qc
	}
	return f, nil
}

// Queues reports the submission-queue count.
func (f *Frontend) Queues() int { return len(f.queues) }

// Stats returns a snapshot of one queue's counters.
func (f *Frontend) Stats(q int) QueueStats { return f.queues[q].stats }

// InFlight reports commands dispatched to the device and not yet
// completed, across all queues.
func (f *Frontend) InFlight() int { return f.inFlight }

// Pending reports commands accepted but not yet dispatched, across all
// queues.
func (f *Frontend) Pending() int {
	n := 0
	for i := range f.queues {
		n += len(f.queues[i].pending) - f.queues[i].head
	}
	return n
}

// Drained reports whether every accepted command has completed.
func (f *Frontend) Drained() bool { return f.inFlight == 0 && f.Pending() == 0 }

// Enqueue accepts a command into submission queue q. The command is
// dispatched to the device when arbitration grants it; its Done fires
// at completion as usual. Panics on an out-of-range queue index — a
// workload wiring bug, not a runtime condition.
func (f *Frontend) Enqueue(q int, cmd Command) {
	if q < 0 || q >= len(f.queues) {
		panic(fmt.Sprintf("hic: enqueue to queue %d of %d", q, len(f.queues)))
	}
	if f.rec != nil {
		f.rec.record(f.k.Now(), q, cmd)
	}
	fq := &f.queues[q]
	fq.pending = append(fq.pending, cmd)
	fq.stats.Enqueued++
	f.pump()
}

// pump dispatches while capacity allows. The pumping guard flattens
// synchronous completion chains (device completes during Submit →
// done → caller enqueues more → pump) into this one loop instead of
// recursing once per command.
func (f *Frontend) pump() {
	if f.pumping {
		return
	}
	f.pumping = true
	for f.inFlight < f.maxInFlight {
		q := f.pickQueue()
		if q < 0 {
			break
		}
		f.dispatch(q)
	}
	f.pumping = false
}

// eligible reports whether queue q can dispatch right now.
func (f *Frontend) eligible(q int) bool {
	fq := &f.queues[q]
	return fq.head < len(fq.pending) && fq.inFlight < fq.cfg.Depth
}

// pickQueue arbitrates: the current turn-holder keeps dispatching while
// it has burst credit, then the turn rotates to the next eligible queue
// (scanning cur+1..cur+n wrapping, so the turn can come straight back
// on a single busy queue). Under plain RR burst credit is always 0, so
// every grant rotates — one command per queue per turn.
func (f *Frontend) pickQueue() int {
	n := len(f.queues)
	if f.burstLeft > 0 && f.eligible(f.cur) {
		f.burstLeft--
		return f.cur
	}
	for i := 1; i <= n; i++ {
		q := (f.cur + i) % n
		if !f.eligible(q) {
			continue
		}
		f.cur = q
		f.burstLeft = 0
		if f.arb == WeightedRoundRobin {
			f.burstLeft = f.queues[q].cfg.Weight - 1
		}
		return q
	}
	return -1
}

// dispatch pops queue q's head and hands it to the device through a
// pooled completion slot.
func (f *Frontend) dispatch(q int) {
	fq := &f.queues[q]
	cmd := fq.pending[fq.head]
	fq.pending[fq.head] = Command{}
	fq.head++
	if fq.head == len(fq.pending) {
		fq.pending = fq.pending[:0]
		fq.head = 0
	}
	fq.inFlight++
	f.inFlight++
	fq.stats.Dispatched++

	sl := f.getSlot()
	sl.queue = q
	sl.orig = cmd.Done
	cmd.Done = sl.done
	f.sub.Submit(cmd)
}

func (f *Frontend) getSlot() *fqSlot {
	if n := len(f.free); n > 0 {
		sl := f.free[n-1]
		f.free[n-1] = nil
		f.free = f.free[:n-1]
		return sl
	}
	sl := &fqSlot{f: f}
	sl.done = func(err error) {
		fr := sl.f
		fq := &fr.queues[sl.queue]
		fq.inFlight--
		fr.inFlight--
		fq.stats.Completed++
		if err != nil {
			fq.stats.Failed++
		}
		orig := sl.orig
		// Recycle before the host callback, like readState.finish: a
		// completion that synchronously enqueues (closed-loop tenants)
		// may reuse this slot for the new command.
		sl.orig = nil
		fr.free = append(fr.free, sl)
		if orig != nil {
			orig(err)
		}
		fr.pump()
	}
	return sl
}
