package pagebuf

import (
	"testing"
)

func TestPoolHandsOutFullSizeBuffers(t *testing.T) {
	p := NewPool(512)
	if p.Size() != 512 {
		t.Fatalf("Size() = %d", p.Size())
	}
	b := p.Get()
	defer b.Release()
	if b.Len() != 512 || len(b.Bytes()) != 512 {
		t.Fatalf("buffer len = %d/%d, want 512", b.Len(), len(b.Bytes()))
	}
}

func TestPoolRecyclesStorage(t *testing.T) {
	p := NewPool(64)
	b := p.Get()
	first := &b.Bytes()[0]
	b.Release()
	// With no concurrent borrowers the very next Get must reuse the
	// released buffer's storage — that recycling is the pool's point.
	b2 := p.Get()
	defer b2.Release()
	if &b2.Bytes()[0] != first {
		t.Error("released buffer was not recycled by the next Get")
	}
}

func TestForSharesPoolsBySize(t *testing.T) {
	if For(4096) != For(4096) {
		t.Error("For returned distinct pools for one size")
	}
	if For(4096) == For(8192) {
		t.Error("For shared a pool across sizes")
	}
}

func TestNewPoolRejectsNonPositiveSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPool(0) did not panic")
		}
	}()
	NewPool(0)
}

// TestAllocGatePagebuf is the allocation-regression gate for the arena
// itself: a warmed Get/Release cycle must not allocate. (Under bufdebug
// Release also poisons the payload, but poisoning writes into existing
// storage.)
func TestAllocGatePagebuf(t *testing.T) {
	p := NewPool(4096)
	p.Get().Release() // warm the pool
	avg := testing.AllocsPerRun(100, func() {
		b := p.Get()
		b.Bytes()[0] = 1
		b.Release()
	})
	if avg > 0 {
		t.Errorf("warmed Get/Release allocated %.1f objects per cycle, want 0", avg)
	}
}
