package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/sim"
)

// telemetrySnapshotFixture is a hand-built two-shard snapshot: shard 0
// busy in both recorded windows, shard 1 in one, two mailbox pairs.
func telemetrySnapshotFixture() sim.TelemetrySnapshot {
	return sim.TelemetrySnapshot{
		Lookahead: sim.Microsecond,
		Windows:   7,
		Recent: []sim.WindowRecord{
			{Seq: 6, Start: sim.Time(10 * sim.Microsecond), Span: sim.Microsecond, Busy: 2, Events: []uint64{3, 5}},
			{Seq: 7, Start: sim.Time(12 * sim.Microsecond), Span: sim.Microsecond, Busy: 1, Events: []uint64{2, 0}},
		},
		Mailboxes: []sim.MailboxStats{
			{Src: 0, Dst: 1, Posts: 11, Peak: 2},
			{Src: 1, Dst: 0, Posts: 9, Peak: 1},
		},
	}
}

// TestEmitShardTelemetry pins the event mapping and its deterministic
// order: windows oldest-first, shards ascending, only busy shards, then
// mailbox aggregates.
func TestEmitShardTelemetry(t *testing.T) {
	var buf Buffer
	end := sim.Time(13 * sim.Microsecond)
	EmitShardTelemetry(&buf, telemetrySnapshotFixture(), end)
	want := []Event{
		{Time: sim.Time(10 * sim.Microsecond), Kind: KindShardWindow, TxnID: 6, Chip: 0, Depth: 3, Dur: sim.Microsecond},
		{Time: sim.Time(10 * sim.Microsecond), Kind: KindShardWindow, TxnID: 6, Chip: 1, Depth: 5, Dur: sim.Microsecond},
		{Time: sim.Time(12 * sim.Microsecond), Kind: KindShardWindow, TxnID: 7, Chip: 0, Depth: 2, Dur: sim.Microsecond},
		{Time: end, Kind: KindShardMailbox, Channel: 0, Chip: 1, Cycles: 11, Depth: 2},
		{Time: end, Kind: KindShardMailbox, Channel: 1, Chip: 0, Cycles: 9, Depth: 1},
	}
	if !reflect.DeepEqual(buf.Events(), want) {
		t.Fatalf("emitted %+v\nwant %+v", buf.Events(), want)
	}
	// Nil tracer: the disarmed path must be a no-op, not a panic.
	EmitShardTelemetry(nil, telemetrySnapshotFixture(), end)
}

// TestMetricsShardAggregation pins how the registry folds shard events:
// window total from the max sequence, busy/event sums per shard, and
// posts/peak per mailbox pair.
func TestMetricsShardAggregation(t *testing.T) {
	m := NewMetrics()
	var buf Buffer
	EmitShardTelemetry(&buf, telemetrySnapshotFixture(), sim.Time(13*sim.Microsecond))
	m.Replay(buf.Events())
	s := m.Snapshot()
	if s.ShardWindows != 7 {
		t.Fatalf("ShardWindows = %d, want 7 (max seq)", s.ShardWindows)
	}
	if got, want := s.Shards[0], (ShardMetrics{BusyWindows: 2, Events: 5}); got != want {
		t.Fatalf("shard 0 = %+v, want %+v", got, want)
	}
	if got, want := s.Shards[1], (ShardMetrics{BusyWindows: 1, Events: 5}); got != want {
		t.Fatalf("shard 1 = %+v, want %+v", got, want)
	}
	if s.WindowEvents.Count != 3 || s.WindowEvents.Sum != 10 {
		t.Fatalf("WindowEvents count=%d sum=%d, want 3/10", s.WindowEvents.Count, s.WindowEvents.Sum)
	}
	if got, want := s.Mailboxes[MailboxKey{Src: 0, Dst: 1}], (MailboxMetrics{Posts: 11, Peak: 2}); got != want {
		t.Fatalf("mailbox 0->1 = %+v, want %+v", got, want)
	}
	if got, want := s.Mailboxes[MailboxKey{Src: 1, Dst: 0}], (MailboxMetrics{Posts: 9, Peak: 1}); got != want {
		t.Fatalf("mailbox 1->0 = %+v, want %+v", got, want)
	}
}

// TestShardEventsJSONLRoundTrip pins the wire names of the new kinds.
func TestShardEventsJSONLRoundTrip(t *testing.T) {
	var buf Buffer
	EmitShardTelemetry(&buf, telemetrySnapshotFixture(), sim.Time(13*sim.Microsecond))
	var wire bytes.Buffer
	w := NewJSONLWriter(&wire)
	for _, e := range buf.Events() {
		w.Event(e)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, buf.Events()) {
		t.Fatalf("round trip mismatch:\n%+v\nwant %+v", back, buf.Events())
	}
}

// TestShardsHandler pins the /shards JSON wire shape.
func TestShardsHandler(t *testing.T) {
	sm := NewSyncMetrics()
	EmitShardTelemetry(sm, telemetrySnapshotFixture(), sim.Time(13*sim.Microsecond))
	h := ShardsHandler(sm.Snapshot)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/shards", nil))
	var got struct {
		Windows uint64 `json:"windows"`
		Shards  []struct {
			Shard       int     `json:"shard"`
			BusyWindows uint64  `json:"busy_windows"`
			Events      uint64  `json:"events"`
			Utilization float64 `json:"utilization"`
		} `json:"shards"`
		WindowEvents struct {
			Count uint64 `json:"count"`
		} `json:"window_events"`
		Mailboxes []struct {
			Src   int    `json:"src"`
			Dst   int    `json:"dst"`
			Posts uint64 `json:"posts"`
			Peak  int64  `json:"peak_depth"`
		} `json:"mailboxes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if got.Windows != 7 || len(got.Shards) != 2 || len(got.Mailboxes) != 2 {
		t.Fatalf("windows=%d shards=%d mailboxes=%d, want 7/2/2\n%s",
			got.Windows, len(got.Shards), len(got.Mailboxes), rec.Body.String())
	}
	if got.Shards[0].Shard != 0 || got.Shards[1].Shard != 1 {
		t.Fatalf("shards not sorted: %+v", got.Shards)
	}
	if got.Shards[1].Utilization != 1.0/7.0 {
		t.Fatalf("shard 1 utilization %v, want 1/7", got.Shards[1].Utilization)
	}
	if got.WindowEvents.Count != 3 {
		t.Fatalf("window_events.count = %d, want 3", got.WindowEvents.Count)
	}
	if got.Mailboxes[0].Src != 0 || got.Mailboxes[0].Posts != 11 || got.Mailboxes[0].Peak != 2 {
		t.Fatalf("mailboxes[0] = %+v", got.Mailboxes[0])
	}
}
