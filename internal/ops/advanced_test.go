package ops_test

import (
	"bytes"
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/cpumodel"
	"repro/internal/dram"
	"repro/internal/nand"
	"repro/internal/onfi"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/wave"
)

type rig struct {
	k    *sim.Kernel
	ch   *bus.Channel
	mem  *dram.Buffer
	ctrl *core.Controller
}

func smallParams() nand.Params {
	p := nand.Hynix()
	p.Geometry = onfi.Geometry{Planes: 1, BlocksPerLUN: 8, PagesPerBlk: 4, PageBytes: 256, SpareBytes: 16}
	p.JitterPct = 0
	return p
}

func newRig(t *testing.T, chips int, params nand.Params) *rig {
	t.Helper()
	k := sim.NewKernel()
	ch, err := bus.New(k, onfi.BusConfig{Mode: onfi.NVDDR2, RateMT: 200}, onfi.DefaultTiming(), wave.NewRecorder())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < chips; i++ {
		l, err := nand.NewLUN(params)
		if err != nil {
			t.Fatal(err)
		}
		ch.Attach(l)
	}
	mem := dram.New(1 << 20)
	cpu, err := cpumodel.New(k, 1000, cpumodel.RTOS())
	if err != nil {
		t.Fatal(err)
	}
	ctrl, err := core.New(core.Config{Kernel: k, Channel: ch, DRAM: mem, CPU: cpu})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ctrl.Close)
	return &rig{k: k, ch: ch, mem: mem, ctrl: ctrl}
}

// run starts an op and runs the kernel to completion, returning the op's
// error.
func (r *rig) run(t *testing.T, req core.OpRequest) error {
	t.Helper()
	var opErr error
	done := false
	req.Done = func(err error) { opErr = err; done = true }
	r.ctrl.Start(req)
	r.k.Run()
	if !done {
		t.Fatal("operation never completed")
	}
	return opErr
}

func TestCacheReadPages(t *testing.T) {
	r := newRig(t, 1, smallParams())
	lun := r.ch.Chip(0)
	var want []byte
	for p := 0; p < 3; p++ {
		page := bytes.Repeat([]byte{byte(0xA0 + p)}, 256)
		if err := lun.SeedPage(onfi.RowAddr{Block: 0, Page: p}, page); err != nil {
			t.Fatal(err)
		}
		want = append(want, page...)
	}
	err := r.run(t, core.OpRequest{
		Func: ops.CacheReadPages(onfi.RowAddr{Block: 0, Page: 0}, 3, 0, 256),
		Chip: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.mem.Read(0, 3*256)
	if !bytes.Equal(got, want) {
		t.Error("cache read stream mismatch")
	}
}

func TestCacheReadFasterThanPlainReads(t *testing.T) {
	measure := func(cache bool) sim.Duration {
		r := newRig(t, 1, smallParams())
		lun := r.ch.Chip(0)
		for p := 0; p < 4; p++ {
			if err := lun.SeedPage(onfi.RowAddr{Block: 0, Page: p}, []byte{byte(p)}); err != nil {
				t.Fatal(err)
			}
		}
		var end sim.Time
		if cache {
			r.ctrl.Start(core.OpRequest{
				Func: ops.CacheReadPages(onfi.RowAddr{}, 4, 0, 256),
				Chip: 0,
				Done: func(err error) {
					if err != nil {
						t.Fatal(err)
					}
					end = r.k.Now()
				},
			})
			r.k.Run()
			return sim.Duration(end)
		}
		// Four dependent plain reads.
		var launch func(p int)
		launch = func(p int) {
			r.ctrl.Start(core.OpRequest{
				Func: ops.ReadPage(onfi.Addr{Row: onfi.RowAddr{Page: p}}, p*256, 256),
				Chip: 0,
				Done: func(err error) {
					if err != nil {
						t.Fatal(err)
					}
					if p < 3 {
						launch(p + 1)
					} else {
						end = r.k.Now()
					}
				},
			})
		}
		launch(0)
		r.k.Run()
		return sim.Duration(end)
	}
	plain, cached := measure(false), measure(true)
	if cached >= plain {
		t.Errorf("cache read (%v) not faster than plain reads (%v)", cached, plain)
	}
}

func TestReadWithRetryRecovers(t *testing.T) {
	p := smallParams()
	p.RawBitErrorPer512B = 16
	r := newRig(t, 1, p)
	lun := r.ch.Chip(0)
	want := bytes.Repeat([]byte{0x55}, 256)
	row := onfi.RowAddr{Block: 1, Page: 0}
	if err := lun.SeedPage(row, want); err != nil {
		t.Fatal(err)
	}
	lun.Wear(1, p.MaxPECycles) // aged block: plain reads see flips

	verify := func(data []byte) bool { return bytes.Equal(data, want) }
	err := r.run(t, core.OpRequest{
		Func: ops.ReadWithRetry(onfi.Addr{Row: row}, 0, 256, verify),
		Chip: 0,
	})
	if err != nil {
		t.Fatalf("read retry failed: %v", err)
	}
	got, _ := r.mem.Read(0, 256)
	if !bytes.Equal(got, want) {
		t.Error("retry did not deliver clean data")
	}
}

func TestReadWithRetryUnsupportedPackage(t *testing.T) {
	p := smallParams()
	p.ReadRetryLevels = 0
	r := newRig(t, 1, p)
	err := r.run(t, core.OpRequest{
		Func: ops.ReadWithRetry(onfi.Addr{}, 0, 16, func([]byte) bool { return true }),
		Chip: 0,
	})
	if err == nil {
		t.Error("retry on unsupported package accepted")
	}
}

func TestGangProgramAndRead(t *testing.T) {
	r := newRig(t, 4, smallParams())
	payload := bytes.Repeat([]byte{0x3A}, 256)
	if err := r.mem.Write(0, payload); err != nil {
		t.Fatal(err)
	}
	replicas := []int{0, 2, 3}
	addr := onfi.Addr{Row: onfi.RowAddr{Block: 1, Page: 0}}

	err := r.run(t, core.OpRequest{
		Func:       ops.GangProgram(replicas, addr, 0, 256),
		Chip:       0,
		ExtraChips: []int{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range replicas {
		page, _ := r.ch.Chip(c).PeekPage(addr.Row)
		if !bytes.Equal(page[:256], payload) {
			t.Errorf("replica on chip %d missing", c)
		}
	}
	// Chip 1 untouched.
	if r.ch.Chip(1).Programmed(addr.Row) {
		t.Error("gang program leaked to chip 1")
	}

	err = r.run(t, core.OpRequest{
		Func:       ops.GangRead(replicas, addr, 8192, 256),
		Chip:       0,
		ExtraChips: []int{2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.mem.Read(8192, 256)
	if !bytes.Equal(got, payload) {
		t.Error("gang read mismatch")
	}
}

func TestEraseWithSuspend(t *testing.T) {
	r := newRig(t, 1, smallParams())
	lun := r.ch.Chip(0)
	urgent := bytes.Repeat([]byte{0x99}, 256)
	if err := lun.SeedPage(onfi.RowAddr{Block: 2, Page: 1}, urgent); err != nil {
		t.Fatal(err)
	}
	if err := lun.SeedPage(onfi.RowAddr{Block: 5, Page: 0}, []byte{1}); err != nil {
		t.Fatal(err)
	}
	err := r.run(t, core.OpRequest{
		Func: ops.EraseWithSuspend(5,
			onfi.Addr{Row: onfi.RowAddr{Block: 2, Page: 1}}, 0, 256,
			smallParams().TBERS/4),
		Chip: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, _ := r.mem.Read(0, 256)
	if !bytes.Equal(got, urgent) {
		t.Error("urgent read during suspend mismatch")
	}
	if lun.EraseCount(5) != 1 {
		t.Error("erase did not complete")
	}
	page, _ := lun.PeekPage(onfi.RowAddr{Block: 5, Page: 0})
	if page[0] != 0xFF {
		t.Error("block 5 not actually erased")
	}
	if lun.Stats().SuspendCount != 1 {
		t.Error("suspend did not happen")
	}
}

func TestEraseWithSuspendRejectsSameBlock(t *testing.T) {
	r := newRig(t, 1, smallParams())
	err := r.run(t, core.OpRequest{
		Func: ops.EraseWithSuspend(2, onfi.Addr{Row: onfi.RowAddr{Block: 2}}, 0, 16, sim.Microsecond),
		Chip: 0,
	})
	if err == nil {
		t.Error("read from the erasing block accepted")
	}
}

func TestBootSequence(t *testing.T) {
	r := newRig(t, 1, smallParams())
	err := r.run(t, core.OpRequest{
		Func: ops.BootSequence(smallParams().IDBytes[:2], 0x15),
		Chip: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong expected ID must fail.
	err = r.run(t, core.OpRequest{
		Func: ops.BootSequence([]byte{0x00, 0x01}, 0x15),
		Chip: 0,
	})
	if err == nil {
		t.Error("boot with wrong ID accepted")
	}
}

func TestGangValidation(t *testing.T) {
	r := newRig(t, 2, smallParams())
	if err := r.run(t, core.OpRequest{Func: ops.GangRead(nil, onfi.Addr{}, 0, 16), Chip: 0}); err == nil {
		t.Error("gang read with no replicas accepted")
	}
	if err := r.run(t, core.OpRequest{Func: ops.GangProgram(nil, onfi.Addr{}, 0, 16), Chip: 0}); err == nil {
		t.Error("gang program with no replicas accepted")
	}
	if err := r.run(t, core.OpRequest{Func: ops.CacheReadPages(onfi.RowAddr{}, 0, 0, 16), Chip: 0}); err == nil {
		t.Error("zero-count cache read accepted")
	}
}

func TestInterruptibleProgramServesReads(t *testing.T) {
	r := newRig(t, 1, smallParams())
	lun := r.ch.Chip(0)
	urgent := bytes.Repeat([]byte{0x66}, 256)
	if err := lun.SeedPage(onfi.RowAddr{Block: 3, Page: 1}, urgent); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x44}, 256)
	if err := r.mem.Write(0, payload); err != nil {
		t.Fatal(err)
	}

	// One urgent read, delivered on the first check.
	served := false
	readDone := false
	next := func() (ops.UrgentRead, bool) {
		if served {
			return ops.UrgentRead{}, false
		}
		served = true
		return ops.UrgentRead{
			Addr: onfi.Addr{Row: onfi.RowAddr{Block: 3, Page: 1}}, DramAddr: 4096, N: 256,
			Done: func(err error) {
				if err != nil {
					t.Errorf("urgent read: %v", err)
				}
				readDone = true
			},
		}, true
	}
	err := r.run(t, core.OpRequest{
		Func: ops.InterruptibleProgram(onfi.Addr{Row: onfi.RowAddr{Block: 5}}, 0, 256, next),
		Chip: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !readDone {
		t.Fatal("urgent read never served")
	}
	got, _ := r.mem.Read(4096, 256)
	if !bytes.Equal(got, urgent) {
		t.Error("urgent read data mismatch")
	}
	// The program still completed correctly.
	page, _ := lun.PeekPage(onfi.RowAddr{Block: 5})
	if !bytes.Equal(page[:256], payload) {
		t.Error("program data mismatch after suspension")
	}
	if lun.Stats().SuspendCount == 0 {
		t.Error("program was never suspended")
	}
}
