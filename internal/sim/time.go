// Package sim provides a deterministic discrete-event simulation kernel.
//
// All of BABOL's timing — ONFI waveform delays, NAND busy times, channel
// transfers, and firmware cycle charges — is expressed in virtual time on
// this kernel. Virtual time is counted in integer picoseconds, which is
// fine enough to represent sub-nanosecond waveform details exactly and
// wide enough (int64) to simulate more than a hundred days.
//
// Event accounting: Kernel.Executed counts events that actually fired;
// a cancelled event never fires and is never counted. Kernel.Pending
// counts events that are scheduled and not cancelled — the number of
// callbacks still owed if the simulation runs to quiescence with no
// further scheduling or cancelling. Cancel is O(1), and cancelling an
// event that already fired (or cancelling the same event twice) is a
// no-op that retains no state.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute instant in virtual time, in picoseconds since the
// start of the simulation.
type Time int64

// Duration is a span of virtual time in picoseconds.
type Duration int64

// Common durations.
const (
	Picosecond  Duration = 1
	Nanosecond           = 1000 * Picosecond
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Add returns the instant d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Std converts a virtual duration to a time.Duration. Precision below one
// nanosecond is truncated; Std is intended for reporting, not simulation.
func (d Duration) Std() time.Duration { return time.Duration(d/Nanosecond) * time.Nanosecond }

// Seconds reports d as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports d as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit, e.g. "53us" or "1.2ms".
func (d Duration) String() string {
	switch {
	case d == 0:
		return "0s"
	case d < Nanosecond && d > -Nanosecond:
		return fmt.Sprintf("%dps", int64(d))
	case d < Microsecond && d > -Microsecond:
		return formatUnit(float64(d)/float64(Nanosecond), "ns")
	case d < Millisecond && d > -Millisecond:
		return formatUnit(float64(d)/float64(Microsecond), "us")
	case d < Second && d > -Second:
		return formatUnit(float64(d)/float64(Millisecond), "ms")
	default:
		return formatUnit(float64(d)/float64(Second), "s")
	}
}

// String formats the instant as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

func formatUnit(v float64, unit string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d%s", int64(v), unit)
	}
	return fmt.Sprintf("%.3g%s", v, unit)
}
