package hic

import (
	"fmt"
	"math/rand"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Many-tenant workload engine: each tenant is an independent closed-loop
// traffic source — its own address-space slice, access pattern (including
// zipfian hot sets), read/write/trim mix, queue-depth window, and on/off
// burst modulation — feeding one submission queue of a Frontend. The
// engine is the "millions of users" stand-in: it synthesizes the
// contention a multi-tenant host inflicts on a drive, and reports each
// tenant's latency distribution separately so QoS interference is
// measurable, Copycat-style, instead of vanishing into an aggregate.
//
// Determinism: every tenant draws from its own seeded RNG, all issue
// decisions run on the kernel goroutine, and completions emit
// obs.KindHostCmd events through the host-domain tracer — so a tenant
// run is a pure function of (specs, rig), byte-identical at any shard
// count and reproducible from its seeds.

// Mix is a tenant's command mix in percent. The zero Mix means 100%
// reads; otherwise the three fields must sum to 100.
type Mix struct {
	ReadPct  int
	WritePct int
	TrimPct  int
}

// withDefaults maps the zero Mix to pure reads.
func (m Mix) withDefaults() Mix {
	if m == (Mix{}) {
		return Mix{ReadPct: 100}
	}
	return m
}

// Validate checks the mix sums to 100 with no negative share.
func (m Mix) Validate() error {
	m = m.withDefaults()
	if m.ReadPct < 0 || m.WritePct < 0 || m.TrimPct < 0 {
		return fmt.Errorf("hic: negative mix share %+v", m)
	}
	if m.ReadPct+m.WritePct+m.TrimPct != 100 {
		return fmt.Errorf("hic: mix %+v does not sum to 100", m)
	}
	return nil
}

func (m Mix) String() string {
	m = m.withDefaults()
	return fmt.Sprintf("r%d/w%d/t%d", m.ReadPct, m.WritePct, m.TrimPct)
}

// TenantSpec describes one tenant's traffic.
type TenantSpec struct {
	Name string
	// Queue is the Frontend submission queue this tenant feeds.
	Queue int
	// QueueDepth is the tenant's own outstanding-command window (its
	// io_depth), independent of the queue's device-side window.
	QueueDepth int
	NumOps     int
	// Pattern is Sequential, Random, or Zipfian over the tenant's slice.
	Pattern Pattern
	// ZipfS is the zipfian skew (> 1); 0 defaults to 1.2.
	ZipfS float64
	// ZipfHot bounds the zipfian hot set to the first ZipfHot pages of
	// the slice; 0 means the whole slice.
	ZipfHot int
	// Mix is the read/write/trim split; the zero Mix is pure reads.
	Mix Mix
	// SliceStart/SlicePages carve the tenant's address-space slice
	// [SliceStart, SliceStart+SlicePages).
	SliceStart int
	SlicePages int
	// BurstOn/BurstOff modulate arrivals: issue during BurstOn, idle for
	// BurstOff, repeating. Both zero means always on.
	BurstOn  sim.Duration
	BurstOff sim.Duration
	Seed     int64
}

// Validate checks the spec against a frontend with queues queue slots.
func (t TenantSpec) Validate(queues int) error {
	if t.Name == "" {
		return fmt.Errorf("hic: tenant needs a name")
	}
	if t.Queue < 0 || t.Queue >= queues {
		return fmt.Errorf("hic: tenant %s: queue %d out of %d", t.Name, t.Queue, queues)
	}
	if t.QueueDepth <= 0 {
		return fmt.Errorf("hic: tenant %s: QueueDepth must be positive, got %d", t.Name, t.QueueDepth)
	}
	if t.NumOps <= 0 {
		return fmt.Errorf("hic: tenant %s: NumOps must be positive, got %d", t.Name, t.NumOps)
	}
	if t.SliceStart < 0 || t.SlicePages <= 0 {
		return fmt.Errorf("hic: tenant %s: bad slice [%d,+%d)", t.Name, t.SliceStart, t.SlicePages)
	}
	if err := t.Mix.Validate(); err != nil {
		return fmt.Errorf("hic: tenant %s: %w", t.Name, err)
	}
	if t.Pattern == Zipfian && t.ZipfS != 0 && t.ZipfS <= 1 {
		return fmt.Errorf("hic: tenant %s: ZipfS must be > 1, got %v", t.Name, t.ZipfS)
	}
	if t.ZipfHot < 0 || t.ZipfHot > t.SlicePages {
		return fmt.Errorf("hic: tenant %s: ZipfHot %d outside slice of %d", t.Name, t.ZipfHot, t.SlicePages)
	}
	if t.BurstOff > 0 && t.BurstOn <= 0 {
		return fmt.Errorf("hic: tenant %s: BurstOff without BurstOn never issues", t.Name)
	}
	if t.BurstOn < 0 || t.BurstOff < 0 {
		return fmt.Errorf("hic: tenant %s: negative burst durations", t.Name)
	}
	return nil
}

// TenantResult is one tenant's per-run accounting: the shared Result
// (success/failure counts, latency distribution) plus the issued
// command mix.
type TenantResult struct {
	Name string
	Result
	Reads  int
	Writes int
	Trims  int
}

// tenantRun is one tenant's live state: RNGs, issue bookkeeping, and
// its pooled queue-depth slots.
type tenantRun struct {
	k      *sim.Kernel
	f      *Frontend
	spec   TenantSpec
	tracer obs.Tracer
	res    *TenantResult
	rng    *rand.Rand
	zipf   *rand.Zipf
	start  sim.Time
	seq    int
	issued int
}

// tenantSlot is one outstanding-command slot of a tenant: submission
// timestamp, issued kind, and once-bound issue/done callbacks.
type tenantSlot struct {
	t         *tenantRun
	submitted sim.Time
	kind      Kind
	issue     func()
	done      func(error)
}

// RunTenants starts every tenant's closed loops against frontend f and
// returns per-tenant results, populated once the caller runs the kernel
// (or sharded rig) to completion — check Done() == NumOps per tenant.
// Completions emit obs.KindHostCmd events into tracer (Label = tenant,
// Depth = queue, Cycles = command kind, Dur = latency); nil disables
// emission.
func RunTenants(k *sim.Kernel, f *Frontend, tenants []TenantSpec, tracer obs.Tracer) ([]*TenantResult, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("hic: no tenants")
	}
	for _, spec := range tenants {
		if err := spec.Validate(f.Queues()); err != nil {
			return nil, err
		}
	}
	results := make([]*TenantResult, len(tenants))
	for i, spec := range tenants {
		spec.Mix = spec.Mix.withDefaults()
		res := &TenantResult{Name: spec.Name}
		res.Start = k.Now()
		res.latencies = make([]sim.Duration, 0, spec.NumOps)
		results[i] = res
		t := &tenantRun{
			k: k, f: f, spec: spec, tracer: tracer, res: res,
			rng:   rand.New(rand.NewSource(spec.Seed)),
			start: k.Now(),
		}
		if spec.Pattern == Zipfian {
			s := spec.ZipfS
			if s == 0 {
				s = 1.2
			}
			hot := spec.ZipfHot
			if hot == 0 {
				hot = spec.SlicePages
			}
			t.zipf = rand.NewZipf(t.rng, s, 1, uint64(hot-1))
		}
		depth := spec.QueueDepth
		if depth > spec.NumOps {
			depth = spec.NumOps
		}
		slots := make([]tenantSlot, depth)
		for j := range slots {
			sl := &slots[j]
			sl.t = t
			sl.issue = func() { t.issueOn(sl) }
			sl.done = func(err error) { t.complete(sl, err) }
		}
		for j := range slots {
			slots[j].issue()
		}
	}
	return results, nil
}

// burstDelay reports how long until the tenant's next ON window; 0
// means it is issuing now.
func (t *tenantRun) burstDelay() sim.Duration {
	on, off := t.spec.BurstOn, t.spec.BurstOff
	if off == 0 {
		return 0
	}
	period := on + off
	phase := sim.Duration(t.k.Now().Sub(t.start)) % period
	if phase < on {
		return 0
	}
	return period - phase
}

// issueOn issues slot sl's next command, deferring to the next burst ON
// window when the tenant is in its OFF phase.
func (t *tenantRun) issueOn(sl *tenantSlot) {
	if t.issued >= t.spec.NumOps {
		return
	}
	if d := t.burstDelay(); d > 0 {
		t.k.After(d, sl.issue)
		return
	}
	t.issued++
	sl.kind = t.nextKind()
	switch sl.kind {
	case KindRead:
		t.res.Reads++
	case KindWrite:
		t.res.Writes++
	case KindTrim:
		t.res.Trims++
	}
	sl.submitted = t.k.Now()
	t.f.Enqueue(t.spec.Queue, Command{
		Kind: sl.kind, LPN: t.nextLPN(), Tenant: t.spec.Name, Done: sl.done,
	})
}

// complete books one completion: latency measured from enqueue (so
// frontend queueing delay counts — that is the contention being
// studied), failure split per the Result contract, and one host-cmd
// event for the analyze/obs pipeline.
func (t *tenantRun) complete(sl *tenantSlot, err error) {
	now := t.k.Now()
	if err != nil {
		t.res.Failed++
	} else {
		t.res.Completed++
		t.res.latencies = append(t.res.latencies, now.Sub(sl.submitted))
	}
	t.res.End = now
	if t.tracer != nil {
		t.tracer.Event(obs.Event{
			Time: now, Kind: obs.KindHostCmd, Chip: -1,
			Label: t.spec.Name, Depth: t.spec.Queue,
			Cycles: int64(sl.kind), Dur: now.Sub(sl.submitted),
			Err: err != nil,
		})
	}
	sl.issue()
}

// nextKind draws from the tenant's mix.
func (t *tenantRun) nextKind() Kind {
	m := t.spec.Mix
	if m.ReadPct == 100 {
		return KindRead
	}
	v := t.rng.Intn(100)
	switch {
	case v < m.ReadPct:
		return KindRead
	case v < m.ReadPct+m.WritePct:
		return KindWrite
	default:
		return KindTrim
	}
}

// nextLPN draws the next address from the tenant's slice.
func (t *tenantRun) nextLPN() int {
	switch t.spec.Pattern {
	case Sequential:
		lpn := t.spec.SliceStart + t.seq%t.spec.SlicePages
		t.seq++
		return lpn
	case Zipfian:
		// The hot set is the first ZipfHot pages of the slice: rank 0 is
		// the hottest page, matching rand.Zipf's rank-ordered output.
		return t.spec.SliceStart + int(t.zipf.Uint64())
	default:
		return t.spec.SliceStart + t.rng.Intn(t.spec.SlicePages)
	}
}
